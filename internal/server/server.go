// Package server implements the Ajanta agent server (Fig. 1): the
// user-level process that hosts visiting agents. It assembles every
// substrate — the agent environment (host-call interface), the domain
// database, the resource registry, the security manager, per-agent
// namespaces, the transfer protocol — into the structure of the paper's
// Figure 1, and implements the six-step dynamic resource binding
// protocol of Figure 6.
package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/loader"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/sandbox"
	"repro/internal/transfer"
	"repro/internal/vm"
)

// Config assembles a server.
type Config struct {
	// Identity is the server's certified identity; Verifier checks
	// peers and agent credentials against the platform CA.
	Identity keys.Identity
	Verifier keys.Verifier
	// Address is the server's dialable endpoint; it is bound in the
	// name service on Start.
	Address string
	// NameService resolves server names to locations.
	NameService *names.Service
	// Policy is the server's security policy engine.
	Policy *policy.Engine
	// Trusted is the server's local module path (class-path
	// analogue); may be nil for none.
	Trusted *loader.TrustedSet
	// Dial and Listen select the transport (netsim or TCP).
	Dial   func(addr string) (net.Conn, error)
	Listen func(addr string) (net.Listener, error)
	// Fuel is the per-visit instruction budget (DoS containment);
	// 0 applies vm.DefaultFuel.
	Fuel uint64
	// MaxAgents caps concurrently hosted agents; 0 = unlimited.
	MaxAgents int
	// Admission selects manifest-based admission control at the
	// arrival gate (admission.go). AdmissionOff (zero value) preserves
	// the binding-time-only checks; AdmissionEnforce statically
	// analyzes every arriving bundle and rejects over-privileged
	// agents before any VM starts.
	Admission AdmissionMode
	// StrictNamespaces rejects agent bundles that shadow trusted
	// modules instead of silently ignoring the impostors.
	StrictNamespaces bool
	// InstalledResourcePolicy, when true, automatically grants all
	// principals access to resources installed dynamically by agents
	// (convenient for demos; production servers configure rules).
	InstalledResourcePolicy bool
	// DispatchRestriction, when non-empty, makes this server restrict
	// every agent it forwards: a signed delegation link narrows the
	// agent's effective rights to those both the agent and this set
	// permit (§5.2: "a server may also need to forward an agent to
	// another server (like a subcontract) ... restricting some of its
	// existing [privileges]").
	DispatchRestriction cred.RightSet
	// Retry tunes the dispatch fault-tolerance policy: every network
	// send (itinerary stop, go() detour, homecoming) retries transient
	// failures with exponential backoff under this policy. Zero fields
	// take the retry package defaults; the error classifier defaults
	// to the transfer-aware one (rejection, authentication failure and
	// unbound names are permanent, everything else transient).
	Retry retry.Policy
	// RedeliverEvery is the dead-letter redelivery period; 0 applies
	// DefaultRedeliverEvery.
	RedeliverEvery time.Duration
	// ChannelPool tunes the persistent-channel pool every outbound
	// transfer goes through: sessions to repeat destinations are kept
	// open and reused, paying the authentication handshake once per
	// connection instead of once per agent. Zero fields take pool
	// defaults; Disabled forces the dial-per-transfer behaviour.
	ChannelPool transfer.PoolConfig
}

// Server is one agent server.
type Server struct {
	cfg      Config
	reg      *registry.Registry
	db       *domain.Database
	secmgr   *sandbox.Manager
	endpoint *transfer.Endpoint
	pool     *transfer.Pool

	listener net.Listener
	inbound  map[net.Conn]struct{} // live inbound transfer streams
	wg       sync.WaitGroup
	quit     chan struct{}
	quitOnce sync.Once

	retry retry.Policy // resolved dispatch policy
	stats counters

	mu       sync.Mutex
	visits   map[names.Name]*visit
	waiters  map[names.Name]chan *agent.Agent
	held     map[names.Name]*agent.Agent  // homecomings awaiting an Await call
	parked   map[names.Name]*parcel       // dead-letter store (deadletter.go)
	statuses map[names.Name]domain.Status // last known, survives domain removal
	ledger   map[names.Name]uint64        // owner -> accumulated charges
	arrivals uint64
}

// visit is one hosted agent's execution context.
type visit struct {
	agent   *agent.Agent
	dom     domain.ID
	ns      *loader.Namespace
	env     *vm.Env
	meter   *vm.Meter
	handles map[uint64]*resource.Proxy
	nextH   uint64
	// migrate is set by the go host call: destination + entry.
	migrateDest  names.Name
	migrateEntry string
	mailbox      []vm.Value
	mailMu       sync.Mutex
}

// errMigrate is the sentinel the go host call uses to unwind the VM.
var errMigrate = errors.New("server: migration requested")

// Server-level errors.
var (
	ErrCapacity    = errors.New("server: at capacity")
	ErrNoSuchAgent = errors.New("server: no such agent")
)

// New builds a server from a config.
func New(cfg Config) (*Server, error) {
	if cfg.NameService == nil {
		return nil, errors.New("server: config needs a NameService")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewEngine()
	}
	if cfg.Trusted == nil {
		ts, err := loader.NewTrustedSet()
		if err != nil {
			return nil, err
		}
		cfg.Trusted = ts
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = vm.DefaultFuel
	}
	s := &Server{
		cfg:      cfg,
		reg:      registry.New(),
		db:       domain.NewDatabase(),
		secmgr:   sandbox.New(256),
		quit:     make(chan struct{}),
		inbound:  make(map[net.Conn]struct{}),
		visits:   make(map[names.Name]*visit),
		waiters:  make(map[names.Name]chan *agent.Agent),
		held:     make(map[names.Name]*agent.Agent),
		parked:   make(map[names.Name]*parcel),
		statuses: make(map[names.Name]domain.Status),
		ledger:   make(map[names.Name]uint64),
	}
	// Resolve the dispatch retry policy: transfer-aware classification
	// unless the config overrides it, and a hook that counts every
	// backoff fired for Stats.
	s.retry = cfg.Retry
	if s.retry.Classify == nil {
		s.retry.Classify = transientTransferErr
	}
	userHook := s.retry.OnRetry
	s.retry.OnRetry = func(attempt int, err error, d time.Duration) {
		s.stats.retries.Add(1)
		if userHook != nil {
			userHook(attempt, err, d)
		}
	}
	s.endpoint = &transfer.Endpoint{
		Identity:         cfg.Identity,
		Verifier:         cfg.Verifier,
		HandshakeTimeout: 5 * time.Second,
		TransferTimeout:  s.retry.PerAttempt, // 0 -> no overall deadline
	}
	if s.endpoint.TransferTimeout == 0 {
		s.endpoint.TransferTimeout = retry.DefaultPerAttempt
	}
	if cfg.Dial != nil {
		pc := cfg.ChannelPool
		pc.Dial = cfg.Dial
		s.pool = transfer.NewPool(s.endpoint, pc)
	}
	return s, nil
}

// transientTransferErr is the default dispatch error classifier: a
// receiver that rejected the agent, failed authentication, a name with
// no binding, or an explicitly permanent error will not improve with
// retrying; anything else (refused dial, reset, timeout, partition) is
// assumed transient.
func transientTransferErr(err error) bool {
	switch {
	case err == nil:
		return false
	case retry.IsPermanent(err),
		errors.Is(err, transfer.ErrRejected),
		errors.Is(err, transfer.ErrAuth),
		errors.Is(err, transfer.ErrPoolClosed),
		errors.Is(err, names.ErrNotBound):
		return false
	}
	return true
}

// Name returns the server's global name.
func (s *Server) Name() names.Name { return s.cfg.Identity.Name }

// Address returns the server's endpoint address.
func (s *Server) Address() string { return s.cfg.Address }

// Registry exposes the resource registry (for installing server-side
// resources before Start).
func (s *Server) Registry() *registry.Registry { return s.reg }

// InstallResource registers a server-owned resource and publishes its
// location in the name service, enabling agents elsewhere to co-locate
// with it by name (§4's "co-location with named objects").
func (s *Server) InstallResource(e registry.Entry) error {
	if err := s.reg.Register(e); err != nil {
		return err
	}
	return s.cfg.NameService.Bind(e.Name, names.Location{
		Address: s.cfg.Address, ServerName: s.Name(),
	})
}

// DomainDB exposes the domain database (status queries, tests).
func (s *Server) DomainDB() *domain.Database { return s.db }

// SecurityManager exposes the reference monitor (audit inspection).
func (s *Server) SecurityManager() *sandbox.Manager { return s.secmgr }

// Policy exposes the policy engine.
func (s *Server) Policy() *policy.Engine { return s.cfg.Policy }

// Start binds the listener and begins accepting agent transfers, and
// starts the dead-letter redelivery loop.
func (s *Server) Start() error {
	if s.cfg.Listen == nil {
		return errors.New("server: config needs Listen")
	}
	l, err := s.cfg.Listen(s.cfg.Address)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	if err := s.cfg.NameService.Bind(s.Name(), names.Location{
		Address: s.cfg.Address, ServerName: s.Name(),
	}); err != nil {
		_ = l.Close()
		return err
	}
	s.wg.Add(1)
	go s.acceptLoop(l)
	every := s.cfg.RedeliverEvery
	if every <= 0 {
		every = DefaultRedeliverEvery
	}
	s.wg.Add(1)
	go s.redeliverLoop(every)
	return nil
}

// Stop shuts the server down and waits for hosted agents to finish
// their current activity. Agents still parked in the dead-letter store
// remain queryable via ParkedAgents (they are not lost, just stranded
// until the operator restarts or drains the server).
func (s *Server) Stop() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.mu.Lock()
	l := s.listener
	s.listener = nil
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.cfg.NameService.Unbind(s.Name())
	// Kill inbound transfer streams: a peer's pooled sender would hold
	// its channel open (and this server's serving goroutine with it)
	// indefinitely. The peer sees a closed session and re-dials
	// elsewhere — or parks the agent — under its own retry policy.
	s.closeInbound()
	s.wg.Wait()
	// Only after hosted agents finished their final sends (retries are
	// cancelled by quit) is the outbound pool drained.
	if s.pool != nil {
		s.pool.Close()
	}
}

// closeInbound tears down every live inbound transfer stream.
func (s *Server) closeInbound() {
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.inbound))
	for c := range s.inbound {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Crash simulates a machine failure for fault-injection tests: the
// listener drops, so new transfers are refused, but — unlike Stop —
// the name-service binding stays (a crashed machine does not
// deregister itself) and nothing else is torn down. Restart brings
// the server back at the same address; senders are expected to ride
// out the gap with retries and dead-letter redelivery.
func (s *Server) Crash() {
	s.mu.Lock()
	l := s.listener
	s.listener = nil
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	// A machine failure severs established connections in both
	// directions: inbound streams drop (peers' pooled sessions to this
	// server die and must re-dial after Restart) and this server's own
	// warm outbound channels do not survive into its afterlife.
	s.closeInbound()
	if s.pool != nil {
		s.pool.Reset()
	}
}

// Restart re-binds the listener after a Crash. A no-op if the server
// is already accepting.
func (s *Server) Restart() error {
	s.mu.Lock()
	if s.listener != nil {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	l, err := s.cfg.Listen(s.cfg.Address)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return nil
}

// acceptLoop serves one listener incarnation; Crash/Restart cycle the
// loop with the listener they close and rebind.
func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return
			default:
			}
			s.mu.Lock()
			alive := s.listener == l
			s.mu.Unlock()
			if !alive {
				return // crashed or stopped; Restart spawns a new loop
			}
			continue
		}
		s.mu.Lock()
		s.inbound[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.inbound, conn)
				s.mu.Unlock()
			}()
			// One connection carries a stream of transfers (a pooled
			// sender keeps it open); each accepted agent is hosted on
			// its own goroutine so the channel is free for the next.
			_ = s.endpoint.ServeConn(conn, s.admit, func(a *agent.Agent) {
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					s.host(a)
				}()
			})
		}()
	}
}

// admit is the arrival gate: credential verification ("mutual
// authentication of the agent and server"), bundle verification, and
// admission control. Rejections travel back to the sending server.
func (s *Server) admit(a *agent.Agent, from names.Name) error {
	if err := a.Credentials.Verify(s.cfg.Verifier, time.Now()); err != nil {
		return fmt.Errorf("credentials: %w", err)
	}
	if a.Name != a.Credentials.AgentName {
		return errors.New("agent name does not match credentials")
	}
	if err := vm.VerifyBundle(a.Code); err != nil {
		return fmt.Errorf("code: %w", err)
	}
	// Code-integrity check (§2): when the owner pinned the bundle
	// digest, a host that patched or swapped the agent's code en route
	// is caught here.
	if len(a.Credentials.CodeDigest) > 0 {
		digest, err := agent.BundleDigest(a.Code)
		if err != nil {
			return err
		}
		if !bytes.Equal(digest, a.Credentials.CodeDigest) {
			return errors.New("code does not match the owner-signed digest")
		}
	}
	// Manifest admission control (admission.go): reject agents whose
	// statically computed access needs exceed what this server's
	// policy would ever grant them — before any VM starts.
	if s.cfg.Admission == AdmissionEnforce {
		if err := s.checkAdmission(a); err != nil {
			s.stats.admissionRejects.Add(1)
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxAgents > 0 && len(s.visits) >= s.cfg.MaxAgents {
		return ErrCapacity
	}
	return nil
}

// LaunchLocal submits an agent directly to this server (the path used
// by a local application, Fig. 1's "submitted to it either by a
// user-level application or by another agent server via the network").
func (s *Server) LaunchLocal(a *agent.Agent) error {
	if err := s.admit(a, s.Name()); err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.host(a)
	}()
	return nil
}

// Await registers interest in an agent's homecoming. The returned
// channel receives the agent when it completes its itinerary and is
// delivered at this server (its home site). An agent that already came
// home before anyone awaited it is handed over immediately from the
// held map — homecomings are never dropped for want of a waiter.
func (s *Server) Await(agentName names.Name) <-chan *agent.Agent {
	ch := make(chan *agent.Agent, 1)
	s.mu.Lock()
	if a, ok := s.held[agentName]; ok {
		delete(s.held, agentName)
		s.mu.Unlock()
		ch <- a
		s.stats.delivered.Add(1)
		return ch
	}
	s.waiters[agentName] = ch
	s.mu.Unlock()
	return ch
}

// AgentStatus reports a hosted (or previously hosted) agent's status:
// the live domain database first, then the server's tombstone record.
func (s *Server) AgentStatus(n names.Name) (domain.Status, bool) {
	if st, ok := s.db.StatusOf(n); ok {
		return st, true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.statuses[n]
	return st, ok
}

// setFinalStatus records an agent's terminal status.
func (s *Server) setFinalStatus(n names.Name, st domain.Status) {
	s.mu.Lock()
	s.statuses[n] = st
	s.mu.Unlock()
}

// Kill aborts a hosted agent on behalf of principal `by`: only the
// agent's owner (or the server operator, represented by the server's
// own principal) may control it. The abort takes effect at the agent's
// next VM instruction; its bindings are revoked immediately.
func (s *Server) Kill(by names.Name, agentName names.Name) error {
	s.mu.Lock()
	v, ok := s.visits[agentName]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchAgent, agentName)
	}
	if by != v.agent.Credentials.Owner && by != s.cfg.Identity.Name {
		return fmt.Errorf("%w: %s is not the owner", sandbox.ErrDenied, by)
	}
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpAgentControl,
		sandbox.Target{Domain: v.dom, Name: agentName.String()}); err != nil {
		return err
	}
	v.meter.Abort()
	_ = s.db.RevokeAll(domain.ServerID, v.dom)
	_ = s.db.SetStatus(domain.ServerID, v.dom, domain.StatusKilled)
	return nil
}

// Charges reports the accumulated accounting charges billed to an
// owner across all completed visits.
func (s *Server) Charges(owner names.Name) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger[owner]
}

// Arrivals reports how many agents this server has hosted.
func (s *Server) Arrivals() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arrivals
}

// Describe returns the component inventory of Fig. 1, for the
// -describe flag of cmd/ajanta-server and the F1 experiment.
func (s *Server) Describe() string {
	s.mu.Lock()
	hosted := len(s.visits)
	s.mu.Unlock()
	allows, denies := s.secmgr.Stats()
	st := s.Stats()
	return fmt.Sprintf(
		"agent server %s @ %s\n"+
			"  agent environment: go, get_resource, invoke, register_resource, make_mailbox, send/recv, report, log\n"+
			"  resource registry: %d entries\n"+
			"  domain database:   %d live domains (%d hosted agents)\n"+
			"  security manager:  %d allowed / %d denied operations\n"+
			"  agent transfer:    authenticated+encrypted (ed25519 / X25519 / AES-GCM)\n"+
			"  fault tolerance:   %d dispatches, %d retries, %d parked (%d now), %d redelivered\n"+
			"  trusted modules:   %v\n",
		s.Name(), s.cfg.Address, s.reg.Len(), s.db.Count(), hosted,
		allows, denies,
		st.Dispatches, st.Retries, st.Parked, st.ParkedNow, st.Redelivered,
		s.cfg.Trusted.Names())
}

// host runs one agent visit end to end: domain creation, namespace
// construction, entry execution, then migration / homecoming.
func (s *Server) host(a *agent.Agent) {
	s.mu.Lock()
	s.arrivals++
	s.mu.Unlock()

	// Homecoming: itinerary finished and no pending detour — deliver
	// to the waiting owner without creating an execution domain.
	if a.PendingEntry == "" && a.Itinerary.Done() {
		s.deliver(a)
		return
	}

	// Domain creation (§5.3): mediated by the security manager, then
	// recorded in the domain database.
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpDomainDBUpdate, sandbox.Target{Name: a.Name.String()}); err != nil {
		return
	}
	dom, err := s.db.Admit(domain.ServerID, &a.Credentials)
	if err != nil {
		return
	}
	ns, err := loader.NewNamespace(s.cfg.Trusted, a.Code, s.cfg.StrictNamespaces)
	if err != nil {
		a.Log = append(a.Log, fmt.Sprintf("%s: namespace rejected: %v", s.Name(), err))
		_ = s.db.Remove(domain.ServerID, dom)
		s.failHome(a)
		return
	}

	v := &visit{
		agent:   a,
		dom:     dom,
		ns:      ns,
		meter:   vm.NewMeter(s.cfg.Fuel),
		handles: make(map[uint64]*resource.Proxy),
	}
	v.env = &vm.Env{
		Globals:   a.State,
		Host:      make(map[string]vm.HostFunc),
		Resolver:  ns,
		Meter:     v.meter,
		MaxFrames: vm.DefaultMaxFrames,
		Owner:     dom,
	}
	vm.InstallBuiltins(v.env)
	s.installHostAPI(v)

	s.mu.Lock()
	s.visits[a.Name] = v
	s.mu.Unlock()

	// finish ends the visit: record the terminal status, settle the
	// visit's accounting into the per-owner ledger ("mechanisms ...
	// for metering of resource use and charging for such usage", §2),
	// and tear down the protection domain. It must run before the
	// agent is dispatched or delivered so observers never see a live
	// domain for a departed agent — every terminal path below calls
	// it exactly once.
	var finished bool
	finish := func(st domain.Status) {
		if finished {
			return
		}
		finished = true
		_ = s.db.SetStatus(domain.ServerID, dom, st)
		s.setFinalStatus(a.Name, st)
		s.mu.Lock()
		delete(s.visits, a.Name)
		s.mu.Unlock()
		if rec, err := s.db.Lookup(dom); err == nil {
			var total uint64
			for _, bind := range rec.Bindings {
				total += bind.Charge
			}
			if total > 0 {
				s.mu.Lock()
				s.ledger[a.Credentials.Owner] += total
				s.mu.Unlock()
			}
		}
		_ = s.db.RevokeAll(domain.ServerID, dom)
		_ = s.db.Remove(domain.ServerID, dom)
	}
	defer finish(domain.StatusTerminated) // backstop; normally a no-op

	mainMod, err := v.ns.Module(a.MainModule)
	if err != nil {
		a.Log = append(a.Log, fmt.Sprintf("%s: %v", s.Name(), err))
		finish(domain.StatusFailed)
		s.failHome(a)
		return
	}

	// First arrival anywhere: evaluate module-level initializers.
	if !a.Initialized {
		if _, err := vm.Run(v.env, mainMod, "__init__"); err != nil {
			a.Log = append(a.Log, fmt.Sprintf("%s: init: %v", s.Name(), err))
			finish(domain.StatusFailed)
			s.failHome(a)
			return
		}
		a.Initialized = true
	}

	// Select the entry to run: a pending detour entry (set by go) or
	// the itinerary's current stop if it names this server.
	entry := a.PendingEntry
	a.PendingEntry = ""
	advance := false
	if entry == "" {
		if stop, ok := a.Itinerary.Current(); ok {
			for _, srv := range stop.Servers {
				if srv == s.Name() {
					entry = stop.Entry
					advance = true
					break
				}
			}
		}
	}
	if entry != "" {
		_, err = vm.Run(v.env, mainMod, entry)
		switch {
		case err == nil:
			// fall through to itinerary handling
		case errors.Is(err, errMigrate):
			// A go() detour consumes the itinerary stop that was
			// running: the agent has taken over its own routing.
			if advance {
				a.Itinerary.Advance()
			}
			a.Hops++
			finish(domain.StatusDeparted)
			s.dispatchTo(a, v.migrateDest, v.migrateEntry)
			return
		case errors.Is(err, vm.ErrAborted):
			a.Log = append(a.Log, fmt.Sprintf("%s: %s: killed", s.Name(), entry))
			finish(domain.StatusKilled)
			s.failHome(a)
			return
		default:
			a.Log = append(a.Log, fmt.Sprintf("%s: %s: %v", s.Name(), entry, err))
			finish(domain.StatusFailed)
			s.failHome(a)
			return
		}
	}
	if advance {
		a.Itinerary.Advance()
	}
	if stop, ok := a.Itinerary.Current(); ok {
		a.Hops++
		finish(domain.StatusDeparted)
		s.dispatchStop(a, stop)
		return
	}
	finish(domain.StatusTerminated)
	s.deliver(a)
}

// failHome abandons the agent's remaining itinerary and sends it home
// so the owner sees the log. Any pending go() entry is cleared: a
// failed (possibly parked-then-redelivered) agent must never resume a
// stale entry function on arrival.
func (s *Server) failHome(a *agent.Agent) {
	a.PendingEntry = ""
	a.Itinerary.Abandon()
	// The tombstone left by the visit said "departed"; the departure
	// failed, so correct it (without masking killed/failed records).
	s.mu.Lock()
	if st, ok := s.statuses[a.Name]; !ok || st == domain.StatusDeparted {
		s.statuses[a.Name] = domain.StatusFailed
	}
	s.mu.Unlock()
	s.deliver(a)
}

// dispatchStop sends the agent to the first reachable alternative of a
// stop. Each alternative gets the full transient-retry treatment
// before the next one is tried (the paper's "try the next one"
// pattern, §4); only when every alternative is exhausted does the
// agent fail home, with a log entry naming each attempt.
func (s *Server) dispatchStop(a *agent.Agent, stop agent.Stop) {
	var attempts []string
	for _, srv := range stop.Servers {
		if srv == s.Name() {
			// The next stop is this server — rare but legal; re-host.
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.host(a)
			}()
			return
		}
		err := s.sendTo(a, srv)
		if err == nil {
			return
		}
		attempts = append(attempts, fmt.Sprintf("%s: %v", srv, err))
	}
	s.stats.dispatchFailures.Add(1)
	a.Logf("%s: all alternatives unreachable: %s", s.Name(), strings.Join(attempts, "; "))
	s.failHome(a)
}

// dispatchTo handles a go()-requested migration.
func (s *Server) dispatchTo(a *agent.Agent, dest names.Name, entry string) {
	a.PendingEntry = entry
	if dest == s.Name() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.host(a)
		}()
		return
	}
	if err := s.sendTo(a, dest); err != nil {
		a.Logf("%s: go %s: %v", s.Name(), dest, err)
		s.stats.dispatchFailures.Add(1)
		s.failHome(a) // clears PendingEntry
	}
}

// sendTo transfers the agent to a named server via the transfer
// protocol, retrying transient failures under the server's policy.
// Dispatch is a server-domain privilege.
func (s *Server) sendTo(a *agent.Agent, dest names.Name) error {
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpAgentDispatch,
		sandbox.Target{Name: dest.String()}); err != nil {
		return retry.Permanent(err)
	}
	// Narrowing delegation happens once per send, not once per
	// attempt: each Delegate call appends a signed link.
	if !s.cfg.DispatchRestriction.IsEmpty() {
		narrowed := a.Credentials.EffectiveRights().Restrict(s.cfg.DispatchRestriction)
		if err := a.Credentials.Delegate(s.cfg.Identity, narrowed, time.Time{}); err != nil {
			return retry.Permanent(fmt.Errorf("server: dispatch delegation: %w", err))
		}
	}
	loc, err := s.cfg.NameService.Lookup(dest)
	if err != nil {
		return err // ErrNotBound classifies as permanent
	}
	_, err = s.retry.DoWithCancel(s.quit, func() error {
		return s.sendToAddr(a, loc.Address)
	})
	if err == nil {
		s.stats.dispatches.Add(1)
	}
	return err
}

func (s *Server) sendToAddr(a *agent.Agent, addr string) error {
	if s.pool == nil {
		return errors.New("server: config needs Dial")
	}
	if err := s.pool.Send(addr, a); err != nil {
		return err
	}
	// Re-bind only after the receiver's ack: a failed transfer must not
	// leave the name service pointing at a server that never got the
	// agent.
	_ = s.cfg.NameService.Bind(a.Name, names.Location{Address: addr})
	return nil
}

// ChannelPoolStats returns a snapshot of the outbound channel pool's
// counters (dials, reuses, evictions, transparent redials, occupancy).
func (s *Server) ChannelPoolStats() transfer.PoolStats {
	if s.pool == nil {
		return transfer.PoolStats{}
	}
	return s.pool.Stats()
}

// deliver completes an agent's journey: hand it to a local waiter, or
// send it to its home site. A homecoming that fails even after retries
// parks the agent in the dead-letter store for periodic redelivery —
// a completed agent is never dropped because its home was unreachable.
func (s *Server) deliver(a *agent.Agent) {
	if a.Credentials.HomeSite != "" && a.Credentials.HomeSite != s.cfg.Address {
		home := a.Credentials.HomeSite
		_, err := s.retry.DoWithCancel(s.quit, func() error {
			return s.sendToAddr(a, home)
		})
		if err != nil {
			a.Logf("%s: homecoming failed: %v (parked for redelivery)", s.Name(), err)
			s.park(a, home)
			return
		}
		s.stats.dispatches.Add(1)
		return
	}
	s.deliverLocal(a)
}

// deliverLocal hands a homecoming agent to its waiter, or holds it for
// a future Await call.
func (s *Server) deliverLocal(a *agent.Agent) {
	s.mu.Lock()
	ch, ok := s.waiters[a.Name]
	if ok {
		delete(s.waiters, a.Name)
	} else {
		s.held[a.Name] = a
	}
	s.mu.Unlock()
	if ok {
		ch <- a
		s.stats.delivered.Add(1)
	}
}

// nextHandle allocates a host handle for a proxy within a visit.
func (v *visit) nextHandle(p *resource.Proxy) vm.Value {
	v.nextH++
	v.handles[v.nextH] = p
	return vm.H(v.nextH)
}
