// Package server implements the Ajanta agent server (Fig. 1): the
// user-level process that hosts visiting agents. It assembles every
// substrate — the agent environment (host-call interface), the domain
// database, the resource registry, the security manager, per-agent
// namespaces, the transfer protocol — into the structure of the paper's
// Figure 1, and implements the six-step dynamic resource binding
// protocol of Figure 6.
//
// The package is split by concern:
//
//	server.go    — configuration, construction, accessors, queries
//	lifecycle.go — Start/Stop, Crash/Restart, the accept loop
//	hosting.go   — admission gate, the visit state machine, homecoming
//	dispatch.go  — itinerary dispatch, retrying sends, delivery
//	binding.go   — the shared resource-access path (Fig. 6 steps 2–6)
//	hostcalls.go — the agent environment's host-call surface
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/loader"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/sandbox"
	"repro/internal/transfer"
	"repro/internal/vm"
)

// Config assembles a server.
type Config struct {
	// Identity is the server's certified identity; Verifier checks
	// peers and agent credentials against the platform CA.
	Identity keys.Identity
	Verifier keys.Verifier
	// Address is the server's dialable endpoint; it is bound in the
	// name service on Start.
	Address string
	// NameService is the authoritative directory this server binds
	// into and resolves against: a single names.Service, or a
	// names.Federation partitioning authority across stores. The
	// server never queries it directly on hot paths — every dispatch
	// and host call resolves through the per-server lease-caching
	// resolver built in New.
	NameService names.Directory
	// Proximity estimates the network latency between two addresses
	// (netsim platforms wire the simulated per-link latency matrix
	// here). When set, the resolver ranks multi-location answers
	// nearest-first and itinerary dispatch prefers the nearest
	// alternative; nil preserves itinerary order.
	Proximity func(from, to string) time.Duration
	// Policy is the server's security policy engine.
	Policy *policy.Engine
	// Trusted is the server's local module path (class-path
	// analogue); may be nil for none.
	Trusted *loader.TrustedSet
	// Dial and Listen select the transport (netsim or TCP).
	Dial   func(addr string) (net.Conn, error)
	Listen func(addr string) (net.Listener, error)
	// Fuel is the per-visit instruction budget (DoS containment);
	// 0 applies vm.DefaultFuel.
	Fuel uint64
	// MaxAgents caps concurrently hosted agents; 0 = unlimited.
	MaxAgents int
	// Admission selects manifest-based admission control at the
	// arrival gate (admission.go). AdmissionOff (zero value) preserves
	// the binding-time-only checks; AdmissionEnforce statically
	// analyzes every arriving bundle and rejects over-privileged
	// agents before any VM starts.
	Admission AdmissionMode
	// StrictNamespaces rejects agent bundles that shadow trusted
	// modules instead of silently ignoring the impostors.
	StrictNamespaces bool
	// InstalledResourcePolicy, when true, automatically grants all
	// principals access to resources installed dynamically by agents
	// (convenient for demos; production servers configure rules).
	InstalledResourcePolicy bool
	// DispatchRestriction, when non-empty, makes this server restrict
	// every agent it forwards: a signed delegation link narrows the
	// agent's effective rights to those both the agent and this set
	// permit (§5.2: "a server may also need to forward an agent to
	// another server (like a subcontract) ... restricting some of its
	// existing [privileges]").
	DispatchRestriction cred.RightSet
	// Retry tunes the dispatch fault-tolerance policy: every network
	// send (itinerary stop, go() detour, homecoming) retries transient
	// failures with exponential backoff under this policy. Zero fields
	// take the retry package defaults; the error classifier defaults
	// to the transfer-aware one (rejection, authentication failure and
	// unbound names are permanent, everything else transient).
	Retry retry.Policy
	// RedeliverEvery is the dead-letter redelivery period; 0 applies
	// DefaultRedeliverEvery.
	RedeliverEvery time.Duration
	// ChannelPool tunes the persistent-channel pool every outbound
	// transfer goes through: sessions to repeat destinations are kept
	// open and reused, paying the authentication handshake once per
	// connection instead of once per agent. Zero fields take pool
	// defaults; Disabled forces the dial-per-transfer behaviour.
	ChannelPool transfer.PoolConfig
	// DecisionCacheSize bounds the policy decision cache consulted on
	// every resource binding (binding.go); 0 applies
	// policy.DefaultCacheSize.
	DecisionCacheSize int
}

// Server is one agent server.
type Server struct {
	cfg      Config
	reg      *registry.Registry
	db       *domain.Database
	secmgr   *sandbox.Manager
	endpoint *transfer.Endpoint
	pool     *transfer.Pool
	// resolver is the server's lease-caching view of the authoritative
	// directory: dispatch and host calls resolve through it (lock-free
	// on lease-valid hits), and accepted transfer acks seed it with
	// forwarding hints.
	resolver *names.Resolver
	// cache memoizes policy decisions per (credentials digest,
	// resource), stamped with the policy+registry epochs they were
	// computed under.
	cache *policy.DecisionCache
	// gate applies the policy's admission tiers (per-principal rate
	// limits and concurrency quotas) at the arrival gate, shedding
	// over-limit agents back to their sender with a retry-after hint.
	gate *admission.Gate

	// netMu guards the listener state (lifecycle.go): the live
	// listener incarnation and the inbound transfer streams.
	netMu    sync.Mutex
	listener net.Listener
	inbound  map[net.Conn]struct{} // live inbound transfer streams

	wg       sync.WaitGroup
	quit     chan struct{}
	quitOnce sync.Once

	retry retry.Policy // resolved dispatch policy
	stats counters

	// The server's mutable maps are guarded by four small locks split
	// along the package's file boundaries, instead of the single
	// coarse mutex the hosting path used to take several times per
	// visit. Lock-ordering rule (docs/PROTOCOLS.md §8.5): the only
	// pair ever nested is visitMu → parkMu (Await and deliverLocal
	// must check-and-set waiters and held atomically); every other
	// acquisition is singular. Never take visitMu while holding any of
	// the others. The //lock:order annotation below is the
	// machine-readable form of this rule: the lockorder analyzer
	// (cmd/repolint, docs/ANALYZERS.md) derives the allowed partial
	// order from it and flags any other nesting of these four locks,
	// including through one level of intra-package calls.

	// visitMu guards the hosting state machine (hosting.go).
	//
	//lock:order visitMu < parkMu
	visitMu sync.Mutex
	visits  map[names.Name]*visit
	waiters map[names.Name]chan *agent.Agent

	// parkMu guards the delivery backstops (dispatch.go, deadletter.go).
	parkMu sync.Mutex
	held   map[names.Name]*agent.Agent // homecomings awaiting an Await call
	parked map[names.Name]*parcel      // dead-letter store (deadletter.go)

	// finalMu guards the post-visit ledgers (lifecycle accounting).
	finalMu  sync.Mutex
	statuses map[names.Name]domain.Status // last known, survives domain removal
	ledger   map[names.Name]uint64        // owner -> accumulated charges

}

// visit is one hosted agent's execution context.
type visit struct {
	agent *agent.Agent
	dom   domain.ID
	// credKey is the agent's credentials digest, computed once per
	// visit and used as the decision-cache key on every resource
	// binding (and by the admission gate before the visit existed).
	credKey cred.Digest
	ns      *loader.Namespace
	env     *vm.Env
	meter   *vm.Meter
	handles map[uint64]*boundResource
	nextH   uint64
	// usage accumulates this visit's per-binding accounting locally —
	// atomic bumps with no database lock — and is flushed into the
	// domain DB in one batch when the visit finishes (any terminal
	// path: departure, homecoming, failure, kill; a later dead-letter
	// parking changes nothing, the flush already happened).
	usage map[string]*visitUsage
	// migrate is set by the go host call: destination + entry.
	migrateDest  names.Name
	migrateEntry string
	mailbox      []vm.Value
	mailMu       sync.Mutex
}

// boundResource is one live resource handle: the proxy plus the
// visit-local usage accumulator invocations settle into.
type boundResource struct {
	proxy *resource.Proxy
	usage *visitUsage
}

// visitUsage is one binding's local usage tally. Counters are atomic so
// accounting stays exact even if an activity's invocations ever overlap
// the visit's teardown; the common case is uncontended.
type visitUsage struct {
	path        string
	invocations atomic.Uint64
	charge      atomic.Uint64
}

// usageFor returns the visit's accumulator for a resource path,
// creating it on first bind. Called only on the visit's own activity.
func (v *visit) usageFor(path string) *visitUsage {
	if u, ok := v.usage[path]; ok {
		return u
	}
	u := &visitUsage{path: path}
	v.usage[path] = u
	return u
}

// usageBatch snapshots the visit's accumulated usage for FlushUsage.
func (v *visit) usageBatch() []domain.Usage {
	if len(v.usage) == 0 {
		return nil
	}
	out := make([]domain.Usage, 0, len(v.usage))
	for _, u := range v.usage {
		out = append(out, domain.Usage{
			ResourcePath: u.path,
			Invocations:  u.invocations.Load(),
			Charge:       u.charge.Load(),
		})
	}
	return out
}

// errMigrate is the sentinel the go host call uses to unwind the VM.
var errMigrate = errors.New("server: migration requested")

// Server-level errors.
var (
	ErrCapacity    = errors.New("server: at capacity")
	ErrNoSuchAgent = errors.New("server: no such agent")
)

// New builds a server from a config.
func New(cfg Config) (*Server, error) {
	if cfg.NameService == nil {
		return nil, errors.New("server: config needs a NameService")
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewEngine()
	}
	if cfg.Trusted == nil {
		ts, err := loader.NewTrustedSet()
		if err != nil {
			return nil, err
		}
		cfg.Trusted = ts
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = vm.DefaultFuel
	}
	s := &Server{
		cfg:      cfg,
		reg:      registry.New(),
		db:       domain.NewDatabase(),
		secmgr:   sandbox.New(256),
		cache:    policy.NewDecisionCache(cfg.DecisionCacheSize),
		quit:     make(chan struct{}),
		inbound:  make(map[net.Conn]struct{}),
		visits:   make(map[names.Name]*visit),
		waiters:  make(map[names.Name]chan *agent.Agent),
		held:     make(map[names.Name]*agent.Agent),
		parked:   make(map[names.Name]*parcel),
		statuses: make(map[names.Name]domain.Status),
		ledger:   make(map[names.Name]uint64),
	}
	s.gate = admission.NewGate(cfg.Policy, nil)
	// The resolver rides the process-wide coarse clock: lease checks
	// happen on every dispatch-path resolve, and ~1ms granularity is
	// noise against any realistic lease TTL.
	s.resolver = names.NewResolver(cfg.NameService, names.ResolverConfig{
		Self:      cfg.Address,
		Proximity: cfg.Proximity,
		Now:       func() int64 { return resource.CoarseTime().UnixNano() },
	})
	// Resolve the dispatch retry policy: transfer-aware classification
	// unless the config overrides it, and a hook that counts every
	// backoff fired for Stats.
	s.retry = cfg.Retry
	if s.retry.Classify == nil {
		s.retry.Classify = transientTransferErr
	}
	userHook := s.retry.OnRetry
	s.retry.OnRetry = func(attempt int, err error, d time.Duration) {
		s.stats.retries.Add(1)
		if userHook != nil {
			userHook(attempt, err, d)
		}
	}
	s.endpoint = &transfer.Endpoint{
		Identity:         cfg.Identity,
		Verifier:         cfg.Verifier,
		HandshakeTimeout: 5 * time.Second,
		TransferTimeout:  s.retry.PerAttempt, // 0 -> no overall deadline
	}
	if s.endpoint.TransferTimeout == 0 {
		s.endpoint.TransferTimeout = retry.DefaultPerAttempt
	}
	// Piggyback naming updates on transfer acks: an accepted ack
	// already proves where the agent now lives, so the rebind and the
	// local forwarding hint cost zero extra round-trips.
	s.endpoint.OnAck = s.afterTransferAck
	if cfg.Dial != nil {
		pc := cfg.ChannelPool
		pc.Dial = cfg.Dial
		s.pool = transfer.NewPool(s.endpoint, pc)
	}
	return s, nil
}

// transientTransferErr is the default dispatch error classifier: a
// receiver that rejected the agent, failed authentication, a name with
// no binding, or an explicitly permanent error will not improve with
// retrying; anything else (refused dial, reset, timeout, partition) is
// assumed transient. A load-shed (admission.ErrShed) deliberately falls
// in the transient bucket — the receiver said "later", not "never" —
// and its retry-after hint floors the backoff (internal/retry).
func transientTransferErr(err error) bool {
	switch {
	case err == nil:
		return false
	case retry.IsPermanent(err),
		errors.Is(err, transfer.ErrRejected),
		errors.Is(err, transfer.ErrAuth),
		errors.Is(err, transfer.ErrPoolClosed),
		errors.Is(err, names.ErrNotBound),
		errors.Is(err, names.ErrNoAuthority):
		return false
	}
	return true
}

// Name returns the server's global name.
func (s *Server) Name() names.Name { return s.cfg.Identity.Name }

// Address returns the server's endpoint address.
func (s *Server) Address() string { return s.cfg.Address }

// Registry exposes the resource registry (for installing server-side
// resources before Start).
func (s *Server) Registry() *registry.Registry { return s.reg }

// InstallResource registers a server-owned resource and publishes its
// location in the name service, enabling agents elsewhere to co-locate
// with it by name (§4's "co-location with named objects"). The binding
// is added as a replica: several servers installing the same resource
// name become alternative locations, and resolvers rank them by
// proximity.
func (s *Server) InstallResource(e registry.Entry) error {
	if err := s.reg.Register(e); err != nil {
		return err
	}
	return s.cfg.NameService.BindReplica(e.Name, names.Location{
		Address: s.cfg.Address, ServerName: s.Name(),
	})
}

// DomainDB exposes the domain database (status queries, tests).
func (s *Server) DomainDB() *domain.Database { return s.db }

// SecurityManager exposes the reference monitor (audit inspection).
func (s *Server) SecurityManager() *sandbox.Manager { return s.secmgr }

// Policy exposes the policy engine.
func (s *Server) Policy() *policy.Engine { return s.cfg.Policy }

// DecisionCacheStats reports the policy decision cache's hit/miss
// counters (observability for the binding fast path).
func (s *Server) DecisionCacheStats() (hits, misses uint64) {
	return s.cache.Stats()
}

// ResolverStats reports the name resolver's counters (cache hits,
// stale serves, forwarding-hint serves, invalidations — observability
// for the dispatch resolution fast path).
func (s *Server) ResolverStats() names.ResolverStats {
	return s.resolver.Stats()
}

// AgentStatus reports a hosted (or previously hosted) agent's status:
// the live domain database first, then the server's tombstone record.
func (s *Server) AgentStatus(n names.Name) (domain.Status, bool) {
	if st, ok := s.db.StatusOf(n); ok {
		return st, true
	}
	s.finalMu.Lock()
	defer s.finalMu.Unlock()
	st, ok := s.statuses[n]
	return st, ok
}

// setFinalStatus records an agent's terminal status.
func (s *Server) setFinalStatus(n names.Name, st domain.Status) {
	s.finalMu.Lock()
	s.statuses[n] = st
	s.finalMu.Unlock()
}

// Kill aborts a hosted agent on behalf of principal `by`: only the
// agent's owner (or the server operator, represented by the server's
// own principal) may control it. The abort takes effect at the agent's
// next VM instruction; its bindings are revoked immediately.
func (s *Server) Kill(by names.Name, agentName names.Name) error {
	s.visitMu.Lock()
	v, ok := s.visits[agentName]
	s.visitMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchAgent, agentName)
	}
	if by != v.agent.Credentials.Owner && by != s.cfg.Identity.Name {
		return fmt.Errorf("%w: %s is not the owner", sandbox.ErrDenied, by)
	}
	if err := s.secmgr.Check(domain.ServerID, sandbox.OpAgentControl,
		sandbox.Target{Domain: v.dom, Name: agentName.String()}); err != nil {
		return err
	}
	v.meter.Abort()
	_ = s.db.RevokeAll(domain.ServerID, v.dom)
	_ = s.db.SetStatus(domain.ServerID, v.dom, domain.StatusKilled)
	return nil
}

// Charges reports the accumulated accounting charges billed to an
// owner across all completed visits.
func (s *Server) Charges(owner names.Name) uint64 {
	s.finalMu.Lock()
	defer s.finalMu.Unlock()
	return s.ledger[owner]
}

// Arrivals reports how many agents this server has hosted.
func (s *Server) Arrivals() uint64 {
	return s.stats.arrivals.Load()
}

// Describe returns the component inventory of Fig. 1, for the
// -describe flag of cmd/ajanta-server and the F1 experiment.
func (s *Server) Describe() string {
	s.visitMu.Lock()
	hosted := len(s.visits)
	s.visitMu.Unlock()
	allows, denies := s.secmgr.Stats()
	st := s.Stats()
	return fmt.Sprintf(
		"agent server %s @ %s\n"+
			"  agent environment: go, get_resource, invoke, register_resource, make_mailbox, send/recv, report, log\n"+
			"  resource registry: %d entries\n"+
			"  domain database:   %d live domains (%d hosted agents)\n"+
			"  security manager:  %d allowed / %d denied operations\n"+
			"  agent transfer:    authenticated+encrypted (ed25519 / X25519 / AES-GCM)\n"+
			"  fault tolerance:   %d dispatches, %d retries, %d parked (%d now), %d redelivered\n"+
			"  trusted modules:   %v\n",
		s.Name(), s.cfg.Address, s.reg.Len(), s.db.Count(), hosted,
		allows, denies,
		st.Dispatches, st.Retries, st.Parked, st.ParkedNow, st.Redelivered,
		s.cfg.Trusted.Names())
}

// nextHandle allocates a host handle for a bound resource within a
// visit.
func (v *visit) nextHandle(br *boundResource) vm.Value {
	v.nextH++
	v.handles[v.nextH] = br
	return vm.H(v.nextH)
}
