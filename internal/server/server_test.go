package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/loader"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/vm"
)

type fixture struct {
	ca    *keys.Registry
	nw    *netsim.Network
	owner keys.Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(ca, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ca: ca, nw: netsim.NewNetwork(), owner: owner}
}

func (f *fixture) config(t *testing.T, short, addr string) Config {
	t.Helper()
	id, err := keys.NewIdentity(f.ca, names.Server("umn.edu", short), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Identity:    id,
		Verifier:    f.ca.Verifier(),
		Address:     addr,
		NameService: names.NewService(),
		Policy:      policy.NewEngine(),
		Dial:        f.nw.Dial,
		Listen:      func(a string) (net.Listener, error) { return f.nw.Listen(a) },
	}
}

func (f *fixture) agent(t *testing.T, name, src string, it agent.Itinerary, home string) *agent.Agent {
	t.Helper()
	c, err := cred.Issue(f.owner, names.Agent("umn.edu", name),
		f.owner.Name, cred.NewRightSet(cred.All), time.Hour, home)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := asl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(c, mod.Name, []vm.Module{*mod}, it)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("config without NameService accepted")
	}
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	cfg.Listen = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("Start without Listen succeeded")
	}
}

func TestStartBindsNameService(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	loc, err := cfg.NameService.Lookup(s.Name())
	if err != nil || loc.Address != "s1:7000" {
		t.Fatalf("%+v %v", loc, err)
	}
	s.Stop()
	if _, err := cfg.NameService.Lookup(s.Name()); err == nil {
		t.Fatal("still bound after Stop")
	}
}

func TestDescribeListsTrustedModules(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	lib, err := asl.Compile("module mathlib\nfunc id(x) { return x }")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := loader.NewTrustedSet(lib)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trusted = ts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Describe(), "mathlib") {
		t.Fatalf("Describe missing trusted module:\n%s", s.Describe())
	}
}

func TestKillUnknownAgent(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Kill(f.owner.Name, names.Agent("umn.edu", "ghost")); !errors.Is(err, ErrNoSuchAgent) {
		t.Fatalf("got %v", err)
	}
}

func TestAdmitRejections(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	good := f.agent(t, "ok", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	if err := s.admit(good, s.Name()); err != nil {
		t.Fatal(err)
	}
	// Tampered rights.
	tampered := f.agent(t, "bad1", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	tampered.Credentials.Rights = cred.NewRightSet("anything.else")
	if err := s.admit(tampered, s.Name()); err == nil {
		t.Fatal("tampered credentials admitted")
	}
	// Name mismatch.
	renamed := f.agent(t, "bad2", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	renamed.Name = names.Agent("umn.edu", "else")
	if err := s.admit(renamed, s.Name()); err == nil {
		t.Fatal("name mismatch admitted")
	}
	// Corrupt bundle.
	corrupt := f.agent(t, "bad3", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	corrupt.Code[0].Fns[0].Code = []vm.Instr{{Op: vm.OpAdd}}
	if err := s.admit(corrupt, s.Name()); err == nil {
		t.Fatal("corrupt bundle admitted")
	}
	// Expired credentials.
	expired := f.agent(t, "bad4", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	expired.Credentials.Expiry = time.Now().Add(-time.Minute)
	if err := s.admit(expired, s.Name()); err == nil {
		t.Fatal("expired credentials admitted")
	}
}

func TestMailboxCapacity(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	a := f.agent(t, "mb", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	v := &visit{agent: a, dom: domain.ID(2)}
	def := s.newMailbox(v, names.Resource("umn.edu", "mbox"), "mbox")
	send := def.Methods["send"]
	for i := 0; i < mailboxCapacity; i++ {
		if _, err := send([]vm.Value{vm.I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := send([]vm.Value{vm.S("overflow")}); err == nil {
		t.Fatal("mailbox accepted message beyond capacity")
	}
	if n, _ := def.Methods["pending"](nil); !n.Equal(vm.I(mailboxCapacity)) {
		t.Fatalf("pending = %v", n)
	}
	if _, err := send(nil); err == nil {
		t.Fatal("send with no args accepted")
	}
}

func TestVMResourceErrors(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	src := `module app
func main() { return 1 }`
	svc := `module svc
var state = 0
func bump(by) { state = state + by return state }`
	a := f.agent(t, "inst", src, agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}

	// Unknown module.
	if _, err := s.newVMResource(v, names.Resource("umn.edu", "x"), "ghost", "x"); err == nil {
		t.Fatal("unknown module accepted")
	}
	// Working resource with arity checking and persistent state.
	def, err := s.newVMResource(v, names.Resource("umn.edu", "svc"), "svc", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["bump"]([]vm.Value{vm.I(1), vm.I(2)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if out, err := def.Methods["bump"]([]vm.Value{vm.I(5)}); err != nil || !out.Equal(vm.I(5)) {
		t.Fatalf("%v %v", out, err)
	}
	if out, _ := def.Methods["bump"]([]vm.Value{vm.I(2)}); !out.Equal(vm.I(7)) {
		t.Fatalf("state not persistent: %v", out)
	}
	// __init__ never becomes a method.
	if _, ok := def.Methods[asl.InitFunc]; ok {
		t.Fatal("__init__ exposed as a method")
	}
	// A failing initializer rejects installation.
	badInit, err := asl.Compile("module broken\nvar x = 1 / 0\nfunc f() { return 1 }")
	if err != nil {
		t.Fatal(err)
	}
	a2 := f.agent(t, "inst2", src, agent.Itinerary{}, "")
	a2.Code = append(a2.Code, *badInit)
	ns2, err := loader.NewNamespace(mustTrusted(t), a2.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v2 := &visit{agent: a2, dom: domain.ID(3), ns: ns2}
	if _, err := s.newVMResource(v2, names.Resource("umn.edu", "b"), "broken", "b"); err == nil {
		t.Fatal("failing initializer accepted")
	}
}

func TestVMResourceIsConfined(t *testing.T) {
	// Installed code must not see server host calls — only builtins.
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	svc := `module sneaky
func escape() { return go("ajanta:server:umn.edu/other", "main") }`
	a := f.agent(t, "inst", "module app\nfunc main() { return 1 }", agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}
	def, err := s.newVMResource(v, names.Resource("umn.edu", "sneaky"), "sneaky", "sneaky")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["escape"](nil); err == nil {
		t.Fatal("installed resource reached the server API")
	}
}

func TestVMResourceRunawayMetered(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	svc := "module spin\nfunc loop() { while true { } }"
	a := f.agent(t, "inst", "module app\nfunc main() { return 1 }", agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}
	def, err := s.newVMResource(v, names.Resource("umn.edu", "spin"), "spin", "spin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["loop"](nil); !errors.Is(err, vm.ErrFuelExhausted) {
		t.Fatalf("runaway installed method not stopped: %v", err)
	}
}

func TestDispatchStopAllAlternativesFail(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	it := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{s.Name()}, Entry: "main"},
		{Servers: []names.Name{
			names.Server("umn.edu", "ghost1"),
			names.Server("umn.edu", "ghost2"),
		}, Entry: "main"},
	}}
	a := f.agent(t, "stranded", "module m\nfunc main() { report(1) }", it, cfg.Address)
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if !strings.Contains(strings.Join(back.Log, "\n"), "unreachable") {
			t.Fatalf("log = %v", back.Log)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stranded agent never came home")
	}
}

func TestHomecomingToAwaitedWaiter(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	a := f.agent(t, "homer", "module m\nfunc main() { report(7) }",
		agent.Sequence("main", s.Name()), cfg.Address)
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(7)) {
			t.Fatalf("results = %v", back.Results)
		}
		if st, ok := s.AgentStatus(a.Name); !ok || st != domain.StatusTerminated {
			t.Fatalf("status = %v %v", st, ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no homecoming")
	}
}

func TestArrivalsCounter(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 3; i++ {
		a := f.agent(t, fmt.Sprintf("visitor%d", i),
			"module m\nfunc main() { return 1 }",
			agent.Sequence("main", s.Name()), cfg.Address)
		ch := s.Await(a.Name)
		if err := s.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	if got := s.Arrivals(); got != 3 {
		t.Fatalf("arrivals = %d", got)
	}
}

func mustTrusted(t *testing.T) *loader.TrustedSet {
	t.Helper()
	ts, err := loader.NewTrustedSet()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}
