package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/domain"
	"repro/internal/keys"
	"repro/internal/loader"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/retry"
	"repro/internal/vm"
)

type fixture struct {
	ca    *keys.Registry
	nw    *netsim.Network
	owner keys.Identity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	ca, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := keys.NewIdentity(ca, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{ca: ca, nw: netsim.NewNetwork(), owner: owner}
}

func (f *fixture) config(t *testing.T, short, addr string) Config {
	t.Helper()
	id, err := keys.NewIdentity(f.ca, names.Server("umn.edu", short), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Identity:    id,
		Verifier:    f.ca.Verifier(),
		Address:     addr,
		NameService: names.NewService(),
		Policy:      policy.NewEngine(),
		Dial:        func(a string) (net.Conn, error) { return f.nw.DialFrom(addr, a) },
		Listen:      func(a string) (net.Listener, error) { return f.nw.Listen(a) },
	}
}

// fastRetry keeps failure-path tests quick: two attempts, millisecond
// backoff, no jitter.
func fastRetry() retry.Policy {
	return retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond, Jitter: -1}
}

// startServer builds and starts a server sharing the fixture network
// and the given name service (so multi-server tests can dispatch).
func (f *fixture) startServer(t *testing.T, short, addr string, ns *names.Service) *Server {
	t.Helper()
	cfg := f.config(t, short, addr)
	cfg.NameService = ns
	cfg.Retry = fastRetry()
	cfg.RedeliverEvery = 20 * time.Millisecond
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func (f *fixture) agent(t *testing.T, name, src string, it agent.Itinerary, home string) *agent.Agent {
	t.Helper()
	c, err := cred.Issue(f.owner, names.Agent("umn.edu", name),
		f.owner.Name, cred.NewRightSet(cred.All), time.Hour, home)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := asl.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(c, mod.Name, []vm.Module{*mod}, it)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("config without NameService accepted")
	}
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	cfg.Listen = nil
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("Start without Listen succeeded")
	}
}

func TestStartBindsNameService(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	b, err := cfg.NameService.Resolve(s.Name())
	if err != nil || b.Primary().Address != "s1:7000" {
		t.Fatalf("%+v %v", b, err)
	}
	s.Stop()
	if _, err := cfg.NameService.Resolve(s.Name()); err == nil {
		t.Fatal("still bound after Stop")
	}
}

func TestDescribeListsTrustedModules(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	lib, err := asl.Compile("module mathlib\nfunc id(x) { return x }")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := loader.NewTrustedSet(lib)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trusted = ts
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Describe(), "mathlib") {
		t.Fatalf("Describe missing trusted module:\n%s", s.Describe())
	}
}

func TestKillUnknownAgent(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Kill(f.owner.Name, names.Agent("umn.edu", "ghost")); !errors.Is(err, ErrNoSuchAgent) {
		t.Fatalf("got %v", err)
	}
}

func TestAdmitRejections(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	good := f.agent(t, "ok", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	if err := s.admit(good, s.Name()); err != nil {
		t.Fatal(err)
	}
	// Tampered rights.
	tampered := f.agent(t, "bad1", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	tampered.Credentials.Rights = cred.NewRightSet("anything.else")
	if err := s.admit(tampered, s.Name()); err == nil {
		t.Fatal("tampered credentials admitted")
	}
	// Name mismatch.
	renamed := f.agent(t, "bad2", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	renamed.Name = names.Agent("umn.edu", "else")
	if err := s.admit(renamed, s.Name()); err == nil {
		t.Fatal("name mismatch admitted")
	}
	// Corrupt bundle.
	corrupt := f.agent(t, "bad3", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	corrupt.Code[0].Fns[0].Code = []vm.Instr{{Op: vm.OpAdd}}
	if err := s.admit(corrupt, s.Name()); err == nil {
		t.Fatal("corrupt bundle admitted")
	}
	// Expired credentials.
	expired := f.agent(t, "bad4", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	expired.Credentials.Expiry = time.Now().Add(-time.Minute)
	if err := s.admit(expired, s.Name()); err == nil {
		t.Fatal("expired credentials admitted")
	}
}

func TestMailboxCapacity(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	a := f.agent(t, "mb", "module m\nfunc main() { return 1 }", agent.Itinerary{}, "")
	v := &visit{agent: a, dom: domain.ID(2)}
	def := s.newMailbox(v, names.Resource("umn.edu", "mbox"), "mbox")
	send := def.Methods["send"]
	for i := 0; i < mailboxCapacity; i++ {
		if _, err := send([]vm.Value{vm.I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := send([]vm.Value{vm.S("overflow")}); err == nil {
		t.Fatal("mailbox accepted message beyond capacity")
	}
	if n, _ := def.Methods["pending"](nil); !n.Equal(vm.I(mailboxCapacity)) {
		t.Fatalf("pending = %v", n)
	}
	if _, err := send(nil); err == nil {
		t.Fatal("send with no args accepted")
	}
}

func TestVMResourceErrors(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	src := `module app
func main() { return 1 }`
	svc := `module svc
var state = 0
func bump(by) { state = state + by return state }`
	a := f.agent(t, "inst", src, agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}

	// Unknown module.
	if _, err := s.newVMResource(v, names.Resource("umn.edu", "x"), "ghost", "x"); err == nil {
		t.Fatal("unknown module accepted")
	}
	// Working resource with arity checking and persistent state.
	def, err := s.newVMResource(v, names.Resource("umn.edu", "svc"), "svc", "svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["bump"]([]vm.Value{vm.I(1), vm.I(2)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if out, err := def.Methods["bump"]([]vm.Value{vm.I(5)}); err != nil || !out.Equal(vm.I(5)) {
		t.Fatalf("%v %v", out, err)
	}
	if out, _ := def.Methods["bump"]([]vm.Value{vm.I(2)}); !out.Equal(vm.I(7)) {
		t.Fatalf("state not persistent: %v", out)
	}
	// __init__ never becomes a method.
	if _, ok := def.Methods[asl.InitFunc]; ok {
		t.Fatal("__init__ exposed as a method")
	}
	// A failing initializer rejects installation.
	badInit, err := asl.Compile("module broken\nvar x = 1 / 0\nfunc f() { return 1 }")
	if err != nil {
		t.Fatal(err)
	}
	a2 := f.agent(t, "inst2", src, agent.Itinerary{}, "")
	a2.Code = append(a2.Code, *badInit)
	ns2, err := loader.NewNamespace(mustTrusted(t), a2.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v2 := &visit{agent: a2, dom: domain.ID(3), ns: ns2}
	if _, err := s.newVMResource(v2, names.Resource("umn.edu", "b"), "broken", "b"); err == nil {
		t.Fatal("failing initializer accepted")
	}
}

func TestVMResourceIsConfined(t *testing.T) {
	// Installed code must not see server host calls — only builtins.
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	svc := `module sneaky
func escape() { return go("ajanta:server:umn.edu/other", "main") }`
	a := f.agent(t, "inst", "module app\nfunc main() { return 1 }", agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}
	def, err := s.newVMResource(v, names.Resource("umn.edu", "sneaky"), "sneaky", "sneaky")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["escape"](nil); err == nil {
		t.Fatal("installed resource reached the server API")
	}
}

func TestVMResourceRunawayMetered(t *testing.T) {
	f := newFixture(t)
	s, err := New(f.config(t, "s1", "s1:7000"))
	if err != nil {
		t.Fatal(err)
	}
	svc := "module spin\nfunc loop() { while true { } }"
	a := f.agent(t, "inst", "module app\nfunc main() { return 1 }", agent.Itinerary{}, "")
	mod, err := asl.Compile(svc)
	if err != nil {
		t.Fatal(err)
	}
	a.Code = append(a.Code, *mod)
	ns, err := loader.NewNamespace(mustTrusted(t), a.Code, false)
	if err != nil {
		t.Fatal(err)
	}
	v := &visit{agent: a, dom: domain.ID(2), ns: ns}
	def, err := s.newVMResource(v, names.Resource("umn.edu", "spin"), "spin", "spin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := def.Methods["loop"](nil); !errors.Is(err, vm.ErrFuelExhausted) {
		t.Fatalf("runaway installed method not stopped: %v", err)
	}
}

func TestDispatchStopAllAlternativesFail(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	it := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{s.Name()}, Entry: "main"},
		{Servers: []names.Name{
			names.Server("umn.edu", "ghost1"),
			names.Server("umn.edu", "ghost2"),
		}, Entry: "main"},
	}}
	a := f.agent(t, "stranded", "module m\nfunc main() { report(1) }", it, cfg.Address)
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if !strings.Contains(strings.Join(back.Log, "\n"), "unreachable") {
			t.Fatalf("log = %v", back.Log)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stranded agent never came home")
	}
}

func TestHomecomingToAwaitedWaiter(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	a := f.agent(t, "homer", "module m\nfunc main() { report(7) }",
		agent.Sequence("main", s.Name()), cfg.Address)
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(7)) {
			t.Fatalf("results = %v", back.Results)
		}
		if st, ok := s.AgentStatus(a.Name); !ok || st != domain.StatusTerminated {
			t.Fatalf("status = %v %v", st, ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no homecoming")
	}
}

func TestArrivalsCounter(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 3; i++ {
		a := f.agent(t, fmt.Sprintf("visitor%d", i),
			"module m\nfunc main() { return 1 }",
			agent.Sequence("main", s.Name()), cfg.Address)
		ch := s.Await(a.Name)
		if err := s.LaunchLocal(a); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	if got := s.Arrivals(); got != 3 {
		t.Fatalf("arrivals = %d", got)
	}
}

// --- fault-tolerance regression tests ---------------------------------

// A homecoming that arrives before anyone calls Await must be held, not
// dropped (the original deliver() lost such agents on the floor).
func TestHomecomingHeldWithoutWaiter(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	a := f.agent(t, "early", "module m\nfunc main() { report(42) }",
		agent.Sequence("main", s.Name()), cfg.Address)
	// Launch WITHOUT a prior Await: the agent completes and comes home
	// with nobody listening.
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().HeldNow == 0 {
		if time.Now().After(deadline) {
			t.Fatal("homecoming never held")
		}
		time.Sleep(time.Millisecond)
	}
	// A late Await still receives the agent.
	select {
	case back := <-s.Await(a.Name):
		if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(42)) {
			t.Fatalf("results = %v", back.Results)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late Await did not receive the held agent")
	}
	if s.Stats().HeldNow != 0 {
		t.Fatal("held map not drained")
	}
}

// A failed homecoming transfer must park the agent in the dead-letter
// store and redeliver it when the home site comes back — not lose it.
func TestHomecomingFailureParksAndRedelivers(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	home := f.startServer(t, "home", "home:7000", ns)
	defer home.Stop()
	remote := f.startServer(t, "remote", "remote:7000", ns)
	defer remote.Stop()

	home.Crash() // home is down when the agent finishes

	a := f.agent(t, "parked", "module m\nfunc main() { report(9) }",
		agent.Sequence("main", remote.Name()), "home:7000")
	if err := remote.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for remote.Stats().ParkedNow == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("agent never parked; stats=%+v", remote.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if got := remote.ParkedAgents(); len(got) != 1 || got[0] != a.Name {
		t.Fatalf("ParkedAgents = %v", got)
	}

	ch := home.Await(a.Name)
	if err := home.Restart(); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 1 || !back.Results[0].Equal(vm.I(9)) {
			t.Fatalf("results = %v", back.Results)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked agent never redelivered after restart")
	}
	// The redeliver loop records the success after the receiver has
	// already handed the agent to the waiter, so poll briefly.
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := remote.Stats()
		if st.Redelivered == 1 && st.ParkedNow == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats after redelivery: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// A transient single dial failure must not fail the agent home: the
// retry policy absorbs it and the dispatch succeeds.
func TestTransientDialFailureRetrySucceeds(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	s1 := f.startServer(t, "s1", "s1:7000", ns)
	defer s1.Stop()
	s2 := f.startServer(t, "s2", "s2:7000", ns)
	defer s2.Stop()

	f.nw.DropNextDials("s1:7000", "s2:7000", 1)

	it := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{s1.Name()}, Entry: "main"},
		{Servers: []names.Name{s2.Name()}, Entry: "main"},
	}}
	a := f.agent(t, "bouncy", "module m\nfunc main() { report(1) }", it, "s1:7000")
	ch := s1.Await(a.Name)
	if err := s1.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 2 {
			t.Fatalf("agent did not run both stops: %v (log %v)", back.Results, back.Log)
		}
		if strings.Contains(strings.Join(back.Log, "\n"), "unreachable") {
			t.Fatalf("transient failure failed the agent home: %v", back.Log)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent never came home")
	}
	if s1.Stats().Retries == 0 {
		t.Fatal("retry counter not incremented")
	}
}

// First alternative crashed (still bound in the name service, dial
// refused) => retries exhaust, second alternative succeeds.
func TestAlternativeSucceedsAfterCrash(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	s1 := f.startServer(t, "s1", "s1:7000", ns)
	defer s1.Stop()
	s2 := f.startServer(t, "s2", "s2:7000", ns)
	defer s2.Stop()
	s3 := f.startServer(t, "s3", "s3:7000", ns)
	defer s3.Stop()

	s2.Crash() // name binding persists; dials are refused

	it := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{s1.Name()}, Entry: "main"},
		{Servers: []names.Name{s2.Name(), s3.Name()}, Entry: "main"},
	}}
	a := f.agent(t, "alt", "module m\nfunc main() { report(1) }", it, "s1:7000")
	ch := s1.Await(a.Name)
	if err := s1.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if len(back.Results) != 2 {
			t.Fatalf("second alternative not reached: %v (log %v)", back.Results, back.Log)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent never came home")
	}
	if s3.Arrivals() == 0 {
		t.Fatal("s3 never hosted the agent")
	}
}

// Every alternative down => the agent fails home and its log names each
// attempted server.
func TestAllAlternativesDownLogsEachAttempt(t *testing.T) {
	f := newFixture(t)
	ns := names.NewService()
	s1 := f.startServer(t, "s1", "s1:7000", ns)
	defer s1.Stop()
	s2 := f.startServer(t, "s2", "s2:7000", ns)
	defer s2.Stop()
	s3 := f.startServer(t, "s3", "s3:7000", ns)
	defer s3.Stop()
	s2.Crash()
	s3.Crash()

	it := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{s1.Name()}, Entry: "main"},
		{Servers: []names.Name{s2.Name(), s3.Name()}, Entry: "main"},
	}}
	a := f.agent(t, "doomed", "module m\nfunc main() { report(1) }", it, "s1:7000")
	ch := s1.Await(a.Name)
	if err := s1.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		logs := strings.Join(back.Log, "\n")
		if !strings.Contains(logs, "unreachable") {
			t.Fatalf("log = %v", back.Log)
		}
		for _, srv := range []*Server{s2, s3} {
			if !strings.Contains(logs, srv.Name().String()) {
				t.Fatalf("log does not name attempt on %s: %v", srv.Name(), back.Log)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent never failed home")
	}
	if s1.Stats().DispatchFailures == 0 {
		t.Fatal("dispatch failure not counted")
	}
}

// A failed go() detour must clear PendingEntry before the agent heads
// home, so a parked-then-redelivered agent never resumes a stale entry.
func TestPendingEntryClearedOnFailedDetour(t *testing.T) {
	f := newFixture(t)
	cfg := f.config(t, "s1", "s1:7000")
	cfg.Retry = fastRetry()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	src := `module m
func main() { go("ajanta:server:umn.edu/ghost", "resume") }
func resume() { report("must never run") }`
	a := f.agent(t, "detour", src, agent.Sequence("main", s.Name()), cfg.Address)
	ch := s.Await(a.Name)
	if err := s.LaunchLocal(a); err != nil {
		t.Fatal(err)
	}
	select {
	case back := <-ch:
		if back.PendingEntry != "" {
			t.Fatalf("stale PendingEntry %q survived the failure", back.PendingEntry)
		}
		if len(back.Results) != 0 {
			t.Fatalf("stale entry ran: %v", back.Results)
		}
		if !strings.Contains(strings.Join(back.Log, "\n"), "go ") {
			t.Fatalf("log = %v", back.Log)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent never came home")
	}
}

func mustTrusted(t *testing.T) *loader.TrustedSet {
	t.Helper()
	ts, err := loader.NewTrustedSet()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}
