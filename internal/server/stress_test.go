package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/resource"
	"repro/internal/retry"
	"repro/internal/vm"
)

// TestStressVisitLifecycleLocks exercises the decomposed server locks
// (visitMu / parkMu / finalMu / netMu — docs/PROTOCOLS.md §8.5) and the
// sharded domain database under the full concurrent lifecycle mix:
// agents arriving, binding and invoking a priced resource, departing
// and coming home, while other goroutines kill visits mid-flight, probe
// every status surface, and crash/restart the worker so dispatches fall
// into the dead-letter store and get redelivered. Run under -race (the
// CI test job runs `go test -race -run Stress ./internal/...`).
//
// Invariants: every launched agent reaches home (no lost agents across
// the lock split), and the owner's ledger equals the charge the
// successfully returning agents actually incurred — the batched
// FlushUsage path must not drop or double-bill under kills and crashes.
func TestStressVisitLifecycleLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		launchers       = 4
		agentsPerWorker = 12
		invokesPerVisit = 500
		getCost         = 3
	)
	f := newFixture(t)
	ns := names.NewService()
	mk := func(short, addr string, rules ...policy.Rule) *Server {
		cfg := f.config(t, short, addr)
		cfg.NameService = ns
		cfg.Retry = retry.Policy{
			MaxAttempts: 4,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
		}
		cfg.RedeliverEvery = 25 * time.Millisecond
		for _, r := range rules {
			cfg.Policy.AddRule(r)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	home := mk("home", "home:7000")
	defer home.Stop()
	worker := mk("w1", "w1:7000",
		policy.Rule{AnyPrincipal: true, Resource: "counter", Methods: []string{"*"}})
	defer worker.Stop()

	var val atomic.Int64
	def := &resource.Def{
		ResourceImpl: resource.NewImpl(names.Resource("umn.edu", "counter"),
			names.Principal("umn.edu", "admin"), ""),
		Path: "counter",
		Methods: map[string]resource.Method{
			"get": func([]vm.Value) (vm.Value, error) { return vm.I(val.Load()), nil },
		},
		Costs: map[string]uint64{"get": getCost},
	}
	if err := worker.InstallResource(registry.Entry{
		Name: def.Name, Resource: def, AP: def, OwnerDomain: domain.ServerID,
	}); err != nil {
		t.Fatal(err)
	}

	src := fmt.Sprintf(`module m
func main() {
  var c = get_resource("ajanta:resource:umn.edu/counter")
  var k = 0
  while k < %d {
    invoke(c, "get")
    k = k + 1
  }
  report(1)
}`, invokesPerVisit)

	tour := agent.Itinerary{Stops: []agent.Stop{
		{Servers: []names.Name{worker.Name()}, Entry: "main"},
	}}

	// Chaos alongside the fleet: probers hammer every read surface
	// (each takes a different lock of the split), a killer aborts
	// running visits, and the worker crash/restarts once mid-run so
	// some dispatches park in the dead-letter store and redeliver.
	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() { // prober: finalMu (status tombstones, ledger), visitMu, parkMu
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < launchers*agentsPerWorker; i++ {
				n := names.Agent("umn.edu", fmt.Sprintf("stress-%d", i))
				_, _ = home.AgentStatus(n)
				_, _ = worker.AgentStatus(n)
			}
			_ = home.Charges(f.owner.Name)
			_ = worker.Stats()
			_ = worker.ParkedAgents()
			_ = home.Describe()
			_ = worker.Arrivals()
		}
	}()
	var kills atomic.Uint64
	chaos.Add(1)
	go func() { // killer: visitMu + domain shard locks against live visits
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < launchers*agentsPerWorker; i++ {
				n := names.Agent("umn.edu", fmt.Sprintf("stress-%d", i))
				if err := worker.Kill(f.owner.Name, n); err == nil {
					kills.Add(1)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	crashed := make(chan struct{})
	chaos.Add(1)
	go func() { // netMu: one crash/restart while the fleet is in flight
		defer chaos.Done()
		defer close(crashed)
		time.Sleep(20 * time.Millisecond)
		worker.Crash()
		time.Sleep(50 * time.Millisecond)
		if err := worker.Restart(); err != nil {
			t.Errorf("restart: %v", err)
		}
	}()

	// The fleet: launchers concurrently submit, then await, their
	// agents. Names are globally unique so killer/prober can target
	// them by index.
	type outcome struct {
		name names.Name
		back *agent.Agent
	}
	results := make(chan outcome, launchers*agentsPerWorker)
	var fleet sync.WaitGroup
	for l := 0; l < launchers; l++ {
		fleet.Add(1)
		go func(l int) {
			defer fleet.Done()
			for i := 0; i < agentsPerWorker; i++ {
				name := fmt.Sprintf("stress-%d", l*agentsPerWorker+i)
				a := f.agent(t, name, src, tour, "home:7000")
				ch := home.Await(a.Name)
				if err := home.LaunchLocal(a); err != nil {
					t.Errorf("launch %s: %v", name, err)
					results <- outcome{name: a.Name}
					continue
				}
				select {
				case back := <-ch:
					results <- outcome{name: a.Name, back: back}
				case <-time.After(60 * time.Second):
					results <- outcome{name: a.Name}
				}
			}
		}(l)
	}
	fleet.Wait()
	close(stop)
	chaos.Wait()
	close(results)

	var lost, completed, disrupted int
	for out := range results {
		switch {
		case out.back == nil:
			lost++
			t.Errorf("agent %s lost (no homecoming)", out.name)
		case len(out.back.Results) == 1:
			completed++
		default:
			disrupted++ // killed or failed mid-visit; still came home
		}
	}
	t.Logf("stress: %d completed, %d disrupted, %d lost, %d kills, worker stats %+v",
		completed, disrupted, lost, kills.Load(), worker.Stats())
	if completed == 0 {
		t.Error("no agent completed a full visit — the mix never exercised the happy path")
	}

	// Ledger integrity: completed agents ran exactly invokesPerVisit
	// successful calls each; disrupted agents ran between 0 and
	// invokesPerVisit. Every flushed charge lands on the worker's
	// ledger for the owner.
	charges := worker.Charges(f.owner.Name)
	minWant := uint64(completed * invokesPerVisit * getCost)
	maxWant := uint64((completed + disrupted) * invokesPerVisit * getCost)
	if charges < minWant || charges > maxWant {
		t.Errorf("ledger = %d, want within [%d, %d]", charges, minWant, maxWant)
	}
}
