package server

import (
	"fmt"
	"sync"

	"repro/internal/asl"
	"repro/internal/domain"
	"repro/internal/names"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/vm"
)

// vmResourceFuel bounds each method invocation of an installed
// resource; installed code is as untrusted as the agent that carried it.
const vmResourceFuel = 1_000_000

// newVMResource builds a resource whose methods are implemented by one
// of the visiting agent's own modules (§5.5's dynamic server extension:
// "the agent can carry resource objects, each of which encapsulates a
// customized access control protocol ... leaving the passive resource
// objects behind").
//
// The resource object is passive and confined: its methods execute in a
// private VM environment with only the pure builtins — no server API,
// no network, no registry — and its state is a fresh global table
// initialized by the module's __init__, independent of the installing
// agent's state.
func (s *Server) newVMResource(v *visit, rn names.Name, modName, path string) (*resource.Def, error) {
	// The module must come from the agent's own bundle; trusted
	// modules are the server's and cannot be re-registered by agents.
	var mod *vm.Module
	for _, own := range v.ns.OwnModules() {
		if own == modName {
			m, err := v.ns.Module(modName)
			if err != nil {
				return nil, err
			}
			mod = m
		}
	}
	if mod == nil {
		return nil, fmt.Errorf("%w: module %q not in agent bundle", ErrBadArg, modName)
	}

	state := make(map[string]vm.Value)
	runIn := func(fn string, args []vm.Value) (vm.Value, error) {
		env := vm.NewEnv()
		env.Globals = state
		env.Meter = vm.NewMeter(vmResourceFuel)
		env.Resolver = vm.ModuleResolver{M: mod}
		vm.InstallBuiltins(env)
		return vm.Run(env, mod, fn, args...)
	}

	var mu sync.Mutex
	methods := make(map[string]resource.Method)
	for i := range mod.Fns {
		fn := mod.Fns[i]
		if fn.Name == asl.InitFunc {
			continue
		}
		name := fn.Name
		nparams := fn.NParams
		methods[name] = func(args []vm.Value) (vm.Value, error) {
			if len(args) != nparams {
				return vm.Nil(), fmt.Errorf("%w: %s wants %d args, got %d", ErrBadArg, name, nparams, len(args))
			}
			mu.Lock()
			defer mu.Unlock()
			return runIn(name, args)
		}
	}

	// Initialize the resource's own state once, at install time.
	if _, f := mod.Fn(asl.InitFunc); f != nil {
		mu.Lock()
		_, err := runIn(asl.InitFunc, nil)
		mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("server: installed resource init: %w", err)
		}
	}

	return &resource.Def{
		ResourceImpl: resource.ResourceImpl{
			Name:  rn,
			Owner: v.agent.Credentials.Owner,
			Desc:  fmt.Sprintf("installed by %s (module %s)", v.agent.Name, modName),
		},
		Path:    path,
		Methods: methods,
		// The installing agent's domain may control proxies of its
		// resource (selective revocation stays with the provider).
		Controllers: []domain.ID{v.dom},
	}, nil
}

// policyRuleForInstalled grants every principal access to a dynamically
// installed resource (demo default; see Config.InstalledResourcePolicy).
func policyRuleForInstalled(path string) policy.Rule {
	return policy.Rule{AnyPrincipal: true, Resource: path, Methods: []string{"*"}}
}
