package transfer

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := helloMsg{ServerName: names.Server("a", "b")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out helloMsg
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ServerName != in.ServerName {
		t.Fatalf("got %+v", out)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
	buf.Write(lenBuf[:])
	var out helloMsg
	if err := readFrame(&buf, &out); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], 100)
	buf.Write(lenBuf[:])
	buf.WriteString("short")
	var out helloMsg
	if err := readFrame(&buf, &out); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestSessionRecvTooLarge(t *testing.T) {
	nw := netsim.NewNetwork()
	l, err := nw.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], MaxFrame+1)
		_, _ = c.Write(lenBuf[:])
	}()
	c, err := nw.Dial("a:1")
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(c, names.Name{}, 0)
	if _, err := s.recv(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestHandshakeTimeout(t *testing.T) {
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := keys.NewIdentity(reg, names.Server("umn.edu", "s"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ep := &Endpoint{Identity: id, Verifier: reg.Verifier(), HandshakeTimeout: 50 * time.Millisecond}

	nw := netsim.NewNetwork()
	l, err := nw.Listen("mute:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		// The peer accepts but never speaks.
		_, _ = l.Accept()
	}()
	conn, err := nw.Dial("mute:1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if _, err := ep.handshake(conn, true, time.Time{}, 0); err == nil {
		t.Fatal("handshake with mute peer succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the handshake")
	}
}

func TestPlaintextSessionFrames(t *testing.T) {
	nw := netsim.NewNetwork()
	l, err := nw.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan []byte, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s := newSession(c, names.Name{}, 0)
		data, _ := s.recv()
		done <- data
	}()
	c, err := nw.Dial("a:1")
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(c, names.Name{}, 0)
	if err := s.send([]byte("clear")); err != nil {
		t.Fatal(err)
	}
	if got := <-done; string(got) != "clear" {
		t.Fatalf("got %q", got)
	}
}
