package transfer

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/resource"
)

// ErrPoolClosed is returned by Pool.Send after Close; it is permanent —
// the owning server is shutting down, not the network failing.
var ErrPoolClosed = errors.New("transfer: channel pool closed")

// PoolConfig tunes the per-destination channel pool.
type PoolConfig struct {
	// Dial opens a transport connection to an address. Required unless
	// Disabled.
	Dial func(addr string) (net.Conn, error)
	// MaxPerPeer caps live (idle + checked-out) sessions per
	// destination; further senders wait for a checkin. Default 4.
	MaxPerPeer int
	// IdleTimeout evicts a pooled session that has sat unused this
	// long; eviction happens lazily at checkout and in a background
	// sweep. Default 30s.
	IdleTimeout time.Duration
	// Disabled bypasses pooling entirely: every Send dials, transfers
	// single-shot, and closes — the pre-pool behaviour, kept as the
	// benchmark baseline and an escape hatch.
	Disabled bool
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.MaxPerPeer <= 0 {
		c.MaxPerPeer = 4
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	return c
}

// PoolStats is a snapshot of a pool's lifetime counters and current
// occupancy.
type PoolStats struct {
	Dials        uint64 // connections dialed + handshaked
	Reuses       uint64 // transfers carried by an already-open session
	Evictions    uint64 // idle sessions closed (timeout, cap, reset)
	StaleRedials uint64 // reused sessions found dead, replaced transparently
	Idle         int    // idle sessions right now, all peers
	Active       int    // checked-out sessions right now, all peers
}

// pooledSession is an idle-list entry: the session plus when it was
// checked in (for idle eviction) and whether it has carried a transfer
// before (a reused session that fails gets one transparent redial; a
// fresh one does not — its failure is the network's answer).
type pooledSession struct {
	s       *session
	idledAt time.Time
	reused  bool
}

// peerPool holds one destination's sessions.
type peerPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	idle   []*pooledSession // LIFO: most recently used first
	active int
	gen    uint64 // bumped by Reset; stale checkins are closed
}

// Pool is a per-destination pool of persistent, already-handshaked
// transfer sessions. One session carries many agents sequentially;
// concurrency toward one peer comes from multiple pooled sessions (up
// to MaxPerPeer). Dead pooled sessions are replaced transparently: a
// transfer that fails on a reused channel is retried once on a freshly
// dialed one before the error is surfaced to the caller's retry policy.
type Pool struct {
	ep  *Endpoint
	cfg PoolConfig

	mu     sync.Mutex
	peers  map[string]*peerPool
	closed bool

	dials        atomic.Uint64
	reuses       atomic.Uint64
	evictions    atomic.Uint64
	staleRedials atomic.Uint64

	reapDone chan struct{}
	reapStop chan struct{}
	stopReap sync.Once // guards close(reapStop) across concurrent Closes
}

// NewPool builds a channel pool over ep. Close it when the owning
// server stops.
func NewPool(ep *Endpoint, cfg PoolConfig) *Pool {
	p := &Pool{
		ep:       ep,
		cfg:      cfg.withDefaults(),
		peers:    make(map[string]*peerPool),
		reapDone: make(chan struct{}),
		reapStop: make(chan struct{}),
	}
	if p.cfg.Disabled {
		close(p.reapDone)
		return p
	}
	go p.reapLoop()
	return p
}

func (p *Pool) peer(addr string) *peerPool {
	p.mu.Lock()
	defer p.mu.Unlock()
	pp := p.peers[addr]
	if pp == nil {
		pp = &peerPool{}
		pp.cond = sync.NewCond(&pp.mu)
		p.peers[addr] = pp
	}
	return pp
}

// checkout returns an idle session for addr or dials a new one,
// blocking while the peer is at its session cap. reused reports whether
// the session has carried a transfer before (and so deserves a
// transparent redial if it turns out dead). skipIdle forces a fresh
// dial — used for the redial after a stale session — evicting an idle
// session if the peer is at cap.
func (p *Pool) checkout(addr string, skipIdle bool) (s *session, reused bool, gen uint64, err error) {
	pp := p.peer(addr)
	pp.mu.Lock()
	for {
		if p.isClosed() {
			pp.mu.Unlock()
			return nil, false, 0, ErrPoolClosed
		}
		// Evict expired idles first: they count against the cap and
		// would otherwise hold a slot a live session could use. Idle
		// stamps and timeouts are seconds-scale, so the shared coarse
		// clock is accurate enough.
		now := resource.CoarseTime()
		kept := pp.idle[:0]
		for _, ps := range pp.idle {
			if now.Sub(ps.idledAt) > p.cfg.IdleTimeout {
				p.evictions.Add(1)
				_ = ps.s.conn.Close()
				ps.s.release()
				continue
			}
			kept = append(kept, ps)
		}
		pp.idle = kept
		if !skipIdle && len(pp.idle) > 0 {
			ps := pp.idle[len(pp.idle)-1]
			pp.idle = pp.idle[:len(pp.idle)-1]
			pp.active++
			gen = pp.gen
			pp.mu.Unlock()
			p.reuses.Add(1)
			return ps.s, ps.reused, gen, nil
		}
		if pp.active+len(pp.idle) < p.cfg.MaxPerPeer {
			break
		}
		if skipIdle && len(pp.idle) > 0 {
			// At cap but we must not reuse: sacrifice an idle session
			// to make room for the fresh dial.
			ps := pp.idle[len(pp.idle)-1]
			pp.idle = pp.idle[:len(pp.idle)-1]
			p.evictions.Add(1)
			_ = ps.s.conn.Close()
			ps.s.release()
			break
		}
		pp.cond.Wait()
	}
	pp.active++
	gen = pp.gen
	pp.mu.Unlock()

	conn, err := p.cfg.Dial(addr)
	if err != nil {
		p.checkinFailed(pp)
		return nil, false, 0, err
	}
	s, err = p.ep.connect(conn)
	if err != nil {
		_ = conn.Close()
		p.checkinFailed(pp)
		return nil, false, 0, err
	}
	p.dials.Add(1)
	return s, false, gen, nil
}

// checkin returns a healthy session to the idle list. Sessions from a
// stale generation (Reset ran meanwhile), version-0 sessions (the peer
// cannot stream), and checkins after Close are closed instead.
func (p *Pool) checkin(addr string, s *session, gen uint64) {
	pp := p.peer(addr)
	pp.mu.Lock()
	pp.active--
	if p.isClosed() || gen != pp.gen || s.version < 1 {
		pp.mu.Unlock()
		pp.cond.Broadcast()
		_ = s.conn.Close()
		s.release()
		return
	}
	pp.idle = append(pp.idle, &pooledSession{s: s, idledAt: resource.CoarseTime(), reused: true})
	pp.mu.Unlock()
	pp.cond.Broadcast()
}

// checkinFailed releases the slot of a session that died or never came
// up.
func (p *Pool) checkinFailed(pp *peerPool) {
	pp.mu.Lock()
	pp.active--
	pp.mu.Unlock()
	pp.cond.Broadcast()
}

func (p *Pool) discard(addr string, s *session) {
	_ = s.conn.Close()
	s.release()
	p.checkinFailed(p.peer(addr))
}

// Send transfers one agent to addr over a pooled session. A transfer
// that fails on a *reused* session is transparently retried once on a
// freshly dialed one — the stale channel was the pool's guess, not the
// network's verdict, so its death must not consume a caller retry
// attempt. Rejections (ErrRejected) and load sheds (admission.ErrShed)
// are the receiver speaking over a healthy channel: the session goes
// back to the pool and the verdict is returned as-is — a shed agent's
// retries in particular must not burn the warm channel they will soon
// travel over.
func (p *Pool) Send(addr string, a *agent.Agent) error {
	if p.cfg.Disabled {
		if p.isClosed() {
			return ErrPoolClosed
		}
		conn, err := p.cfg.Dial(addr)
		if err != nil {
			return err
		}
		defer conn.Close()
		return p.ep.SendAgent(conn, a)
	}
	s, reused, gen, err := p.checkout(addr, false)
	if err != nil {
		return err
	}
	err = p.ep.sendOn(s, a)
	switch {
	case err == nil:
		p.checkin(addr, s, gen)
		return nil
	case errors.Is(err, ErrRejected), errors.Is(err, admission.ErrShed):
		p.checkin(addr, s, gen)
		return err
	}
	p.discard(addr, s)
	if !reused {
		return err
	}
	// The pooled session was stale (peer restarted, idle timeout raced,
	// connection reset while parked). Dial fresh and try once more.
	p.staleRedials.Add(1)
	s, _, gen, err2 := p.checkout(addr, true)
	if err2 != nil {
		return err2
	}
	err2 = p.ep.sendOn(s, a)
	switch {
	case err2 == nil:
		p.checkin(addr, s, gen)
		return nil
	case errors.Is(err2, ErrRejected), errors.Is(err2, admission.ErrShed):
		p.checkin(addr, s, gen)
		return err2
	}
	p.discard(addr, s)
	return err2
}

// Reset closes every idle session and invalidates checked-out ones (they
// are closed at checkin). Used by Server.Crash: a crashed machine's
// warm channels do not survive into its afterlife.
func (p *Pool) Reset() {
	p.mu.Lock()
	peers := make([]*peerPool, 0, len(p.peers))
	for _, pp := range p.peers {
		peers = append(peers, pp)
	}
	p.mu.Unlock()
	for _, pp := range peers {
		pp.mu.Lock()
		pp.gen++
		idle := pp.idle
		pp.idle = nil
		pp.mu.Unlock()
		pp.cond.Broadcast()
		for _, ps := range idle {
			p.evictions.Add(1)
			_ = ps.s.conn.Close()
			ps.s.release()
		}
	}
}

// Close drains the pool: idle sessions are closed now, checked-out ones
// at checkin, and all future Sends fail with ErrPoolClosed. The reap
// goroutine has exited by the time Close returns — for every caller,
// including concurrent ones — so no sweep can race the final Reset or
// touch pool state after the owner has torn it down.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !p.cfg.Disabled {
		p.stopReap.Do(func() { close(p.reapStop) })
		<-p.reapDone
	}
	if already {
		return
	}
	p.Reset()
}

func (p *Pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Stats returns a snapshot of the pool's counters and occupancy.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Dials:        p.dials.Load(),
		Reuses:       p.reuses.Load(),
		Evictions:    p.evictions.Load(),
		StaleRedials: p.staleRedials.Load(),
	}
	p.mu.Lock()
	peers := make([]*peerPool, 0, len(p.peers))
	for _, pp := range p.peers {
		peers = append(peers, pp)
	}
	p.mu.Unlock()
	for _, pp := range peers {
		pp.mu.Lock()
		st.Idle += len(pp.idle)
		st.Active += pp.active
		pp.mu.Unlock()
	}
	return st
}

// reapLoop sweeps idle sessions past their timeout, so channels to a
// peer the server stopped talking to do not linger until the next
// checkout.
func (p *Pool) reapLoop() {
	defer close(p.reapDone)
	// Sweep on the process-wide coarse clock instead of a per-pool
	// time.Ticker: the half-idle-timeout period is seconds-scale, so the
	// shared millisecond wheel is exact enough, and a process full of
	// servers runs one ticker instead of one per pool.
	for {
		if canceled := resource.CoarseSleep(p.cfg.IdleTimeout/2, p.reapStop); canceled {
			return
		}
		p.mu.Lock()
		peers := make([]*peerPool, 0, len(p.peers))
		for _, pp := range p.peers {
			peers = append(peers, pp)
		}
		p.mu.Unlock()
		now := resource.CoarseTime()
		for _, pp := range peers {
			var dead []*pooledSession
			pp.mu.Lock()
			kept := pp.idle[:0]
			for _, ps := range pp.idle {
				if now.Sub(ps.idledAt) > p.cfg.IdleTimeout {
					dead = append(dead, ps)
					continue
				}
				kept = append(kept, ps)
			}
			pp.idle = kept
			pp.mu.Unlock()
			if len(dead) > 0 {
				pp.cond.Broadcast()
			}
			for _, ps := range dead {
				p.evictions.Add(1)
				_ = ps.s.conn.Close()
				ps.s.release()
			}
		}
	}
}
