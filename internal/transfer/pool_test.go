package transfer

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/names"
)

// servePool runs a streaming receiver at addr: every accepted
// connection is served with ServeConn until the listener closes.
// Returns a counter of accepted agents and a stop function.
func servePool(t *testing.T, w *world, addr string, accept func(*agent.Agent, names.Name) error) (*atomic.Int64, func()) {
	t.Helper()
	l, err := w.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	var hosted atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_ = w.b.ServeConn(conn, accept, func(*agent.Agent) {
					hosted.Add(1)
				})
			}()
		}
	}()
	return &hosted, func() {
		l.Close()
		wg.Wait()
	}
}

func newTestPool(w *world, cfg PoolConfig) *Pool {
	if cfg.Dial == nil {
		cfg.Dial = w.net.Dial
	}
	return NewPool(w.a, cfg)
}

func TestPoolReusesSession(t *testing.T) {
	w := newWorld(t)
	hosted, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{})
	defer p.Close()
	a := testAgent(t, w.reg)
	for i := 0; i < 10; i++ {
		if err := p.Send("b:7000", a); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.Dials != 1 {
		t.Fatalf("Dials = %d, want 1 (session not reused)", st.Dials)
	}
	if st.Reuses != 9 {
		t.Fatalf("Reuses = %d, want 9", st.Reuses)
	}
	if got := hosted.Load(); got != 10 {
		t.Fatalf("hosted %d agents, want 10", got)
	}
}

func TestPoolIdleEviction(t *testing.T) {
	w := newWorld(t)
	_, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{IdleTimeout: 20 * time.Millisecond})
	defer p.Close()
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	// Sit past the idle timeout; the background sweep (or the next
	// checkout) must evict the parked session and dial fresh.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Idle != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Dials != 2 {
		t.Fatalf("Dials = %d, want 2 (evicted session reused?)", st.Dials)
	}
	if st.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestPoolMaxPerPeerCap(t *testing.T) {
	w := newWorld(t)
	// An accept gate lets the test hold transfers open so checked-out
	// sessions stay checked out.
	gate := make(chan struct{})
	accept := func(*agent.Agent, names.Name) error {
		<-gate
		return nil
	}
	_, stop := servePool(t, w, "b:7000", accept)
	defer stop()
	p := newTestPool(w, PoolConfig{MaxPerPeer: 2})
	defer p.Close()

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		a := testAgent(t, w.reg) // one agent per sender; Send mutates it
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.Send("b:7000", a)
		}(i)
	}
	// With MaxPerPeer=2, at most two sessions may be live at once; the
	// third sender must wait for a checkin rather than dial.
	deadline := time.Now().Add(time.Second)
	for p.Stats().Active < 2 {
		if time.Now().After(deadline) {
			t.Fatal("senders never checked out sessions")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // give the third sender a chance to (wrongly) dial
	if st := p.Stats(); st.Active > 2 || st.Dials > 2 {
		t.Fatalf("cap exceeded: %+v", st)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if st := p.Stats(); st.Dials > 2 {
		t.Fatalf("Dials = %d, want <= 2", st.Dials)
	}
}

func TestPoolStaleSessionRedial(t *testing.T) {
	w := newWorld(t)
	hosted, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := NewPool(w.a, PoolConfig{Dial: func(addr string) (net.Conn, error) {
		return w.net.DialFrom("a:7000", addr)
	}})
	defer p.Close()
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	// Kill the warm session behind the pool's back — the silent death
	// of a parked connection.
	if n := w.net.ResetConns("a:7000", "b:7000"); n == 0 {
		t.Fatal("no connection to reset")
	}
	// The next Send finds the pooled session dead and must redial
	// transparently: the caller sees success, not a transient error.
	if err := p.Send("b:7000", a); err != nil {
		t.Fatalf("send on stale session not recovered: %v", err)
	}
	st := p.Stats()
	if st.StaleRedials != 1 {
		t.Fatalf("StaleRedials = %d, want 1", st.StaleRedials)
	}
	if st.Dials != 2 {
		t.Fatalf("Dials = %d, want 2", st.Dials)
	}
	deadline := time.Now().Add(time.Second)
	for hosted.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("hosted %d agents, want 2 (exactly one delivery per send)", hosted.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolConcurrentCheckout(t *testing.T) {
	w := newWorld(t)
	hosted, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{MaxPerPeer: 4})
	defer p.Close()
	const senders, each = 8, 20
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < senders; i++ {
		// Each sender owns its agent: sending one agent from multiple
		// goroutines at once is not a supported pattern (Sanitize
		// mutates state), but the pool underneath is shared.
		a := testAgent(t, w.reg)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				if err := p.Send("b:7000", a); err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d sends failed", n)
	}
	st := p.Stats()
	if st.Dials > 4 {
		t.Fatalf("Dials = %d, want <= MaxPerPeer (4)", st.Dials)
	}
	if got := hosted.Load(); got != senders*each {
		t.Fatalf("hosted %d, want %d", got, senders*each)
	}
}

func TestPoolClose(t *testing.T) {
	w := newWorld(t)
	_, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{})
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if st := p.Stats(); st.Idle != 0 || st.Active != 0 {
		t.Fatalf("sessions survive Close: %+v", st)
	}
	if err := p.Send("b:7000", a); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("send after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolCloseWaitsForReaper(t *testing.T) {
	// Close must not return while the reap goroutine is still running:
	// a caller that tears down the netsim (or process) right after
	// Close would otherwise race the sweep. This fails if Close stops
	// waiting on reapDone.
	w := newWorld(t)
	p := newTestPool(w, PoolConfig{IdleTimeout: 2 * time.Millisecond})
	p.Close()
	select {
	case <-p.reapDone:
		// reaper already exited — the ordering Close promises.
	default:
		t.Fatal("Close returned while the reap goroutine was still running")
	}
}

func TestPoolConcurrentCloseWaitsForReaper(t *testing.T) {
	// Every concurrent Close — not just the first — must observe the
	// reaper's exit before returning. The pre-fix code let the loser of
	// the closed-flag race return immediately.
	w := newWorld(t)
	p := newTestPool(w, PoolConfig{IdleTimeout: 2 * time.Millisecond})
	const closers = 8
	var wg sync.WaitGroup
	fail := make(chan struct{}, closers)
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
			select {
			case <-p.reapDone:
			default:
				fail <- struct{}{}
			}
		}()
	}
	wg.Wait()
	if len(fail) > 0 {
		t.Fatalf("%d Close call(s) returned before the reap goroutine exited", len(fail))
	}
}

func TestPoolShedKeepsSession(t *testing.T) {
	// A load-shed, like an ordinary rejection, travels over a healthy
	// channel: the session must be checked back in, not discarded, so
	// the retry a moment later reuses the warm channel.
	w := newWorld(t)
	var n atomic.Int64
	accept := func(*agent.Agent, names.Name) error {
		if n.Add(1) == 2 {
			return &admission.ShedError{Cause: "rate", RetryAfter: 5 * time.Millisecond}
		}
		return nil
	}
	_, stop := servePool(t, w, "b:7000", accept)
	defer stop()
	p := newTestPool(w, PoolConfig{})
	defer p.Close()
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	if err := p.Send("b:7000", a); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	if err := p.Send("b:7000", a); err != nil {
		t.Fatalf("session poisoned by shed: %v", err)
	}
	if st := p.Stats(); st.Dials != 1 {
		t.Fatalf("Dials = %d, want 1 (shed cost the warm session)", st.Dials)
	}
}

func TestPoolReset(t *testing.T) {
	w := newWorld(t)
	_, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{})
	defer p.Close()
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if st := p.Stats(); st.Idle != 0 {
		t.Fatalf("idle sessions survive Reset: %+v", st)
	}
	// The pool still works after a reset — it just dials fresh.
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Dials != 2 {
		t.Fatalf("Dials = %d, want 2", st.Dials)
	}
}

func TestPoolRejectionKeepsSession(t *testing.T) {
	w := newWorld(t)
	var n atomic.Int64
	accept := func(*agent.Agent, names.Name) error {
		if n.Add(1) == 2 {
			return errors.New("no capacity")
		}
		return nil
	}
	_, stop := servePool(t, w, "b:7000", accept)
	defer stop()
	p := newTestPool(w, PoolConfig{})
	defer p.Close()
	a := testAgent(t, w.reg)
	if err := p.Send("b:7000", a); err != nil {
		t.Fatal(err)
	}
	// A receiver-side rejection travels over a healthy channel: it must
	// surface as ErrRejected and must NOT cost the session.
	if err := p.Send("b:7000", a); !errors.Is(err, ErrRejected) {
		t.Fatalf("got %v, want ErrRejected", err)
	}
	if err := p.Send("b:7000", a); err != nil {
		t.Fatalf("session poisoned by rejection: %v", err)
	}
	st := p.Stats()
	if st.Dials != 1 {
		t.Fatalf("Dials = %d, want 1", st.Dials)
	}
}

func TestPoolDisabled(t *testing.T) {
	w := newWorld(t)
	hosted, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	p := newTestPool(w, PoolConfig{Disabled: true})
	defer p.Close()
	a := testAgent(t, w.reg)
	for i := 0; i < 3; i++ {
		if err := p.Send("b:7000", a); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.Dials != 0 || st.Reuses != 0 || st.Idle != 0 {
		t.Fatalf("disabled pool kept state: %+v", st)
	}
	if got := hosted.Load(); got != 3 {
		t.Fatalf("hosted %d, want 3", got)
	}
}

// TestPoolToSingleShotReceiver covers new->old interop: the pooled
// sender negotiates down to version 0 against a ReceiveAgent responder
// and simply does not reuse the session.
func TestPoolToSingleShotReceiver(t *testing.T) {
	w := newWorld(t)
	l, err := w.net.Listen("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if _, err := w.b.ReceiveAgent(conn, nil); err != nil {
				conn.Close()
				return
			}
			conn.Close()
		}
	}()
	p := newTestPool(w, PoolConfig{})
	defer p.Close()
	a := testAgent(t, w.reg)
	for i := 0; i < 3; i++ {
		if err := p.Send("b:7000", a); err != nil {
			t.Fatalf("send %d to v0 receiver: %v", i, err)
		}
	}
	st := p.Stats()
	if st.Dials != 3 {
		t.Fatalf("Dials = %d, want 3 (v0 sessions must not pool)", st.Dials)
	}
	if st.Idle != 0 {
		t.Fatalf("v0 session parked in the pool: %+v", st)
	}
	l.Close()
	wg.Wait()
}

// TestSingleShotSenderToServeConn covers old->new interop: a version-0
// SendAgent against a streaming ServeConn receiver completes exactly one
// exchange.
func TestSingleShotSenderToServeConn(t *testing.T) {
	w := newWorld(t)
	hosted, stop := servePool(t, w, "b:7000", nil)
	defer stop()
	a := testAgent(t, w.reg)
	for i := 0; i < 2; i++ {
		conn, err := w.net.Dial("b:7000")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.a.SendAgent(conn, a); err != nil {
			t.Fatalf("single-shot send to streaming receiver: %v", err)
		}
		conn.Close()
	}
	deadline := time.Now().Add(time.Second)
	for hosted.Load() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("hosted %d, want 2", hosted.Load())
		}
		time.Sleep(time.Millisecond)
	}
}
