// Package transfer implements the server-to-server agent transfer
// protocol (§2, §4): "the primary function of this protocol is to
// securely transfer an agent from one server to another."
//
// Security properties against the paper's open-network threat model:
//
//   - mutual authentication: both endpoints prove possession of the
//     private key matching a CA-certified server certificate, over
//     fresh nonces (no replayable handshakes);
//   - confidentiality and integrity: an X25519 ephemeral key agreement
//     bound to the authenticated transcript yields an AES-GCM session
//     key; every frame is sealed;
//   - replay protection: GCM nonces are per-direction counters, so a
//     recorded frame re-injected later (or reordered) fails to
//     authenticate.
//
// A plaintext mode exists solely as the baseline for experiment C7's
// "cost of security" measurement.
//
// Sessions are versioned. A version-1 session (negotiated via a byte in
// the hello; absent = version 0) stays open after a transfer and
// carries a stream of agent/ack exchanges, which is what the channel
// Pool builds on: the ed25519 + X25519 handshake is paid once per
// connection instead of once per agent. Version-0 peers (older
// binaries, or the single-shot SendAgent/ReceiveAgent API) interoperate
// transparently — the session is simply not reused.
package transfer

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/resource"
	"repro/internal/vm/analysis"
)

// Errors.
var (
	ErrAuth      = errors.New("transfer: peer authentication failed")
	ErrIntegrity = errors.New("transfer: frame integrity check failed")
	ErrRejected  = errors.New("transfer: agent rejected by receiver")
	ErrTooLarge  = errors.New("transfer: frame exceeds size limit")
)

// MaxFrame bounds a single frame (handshake message or sealed agent).
const MaxFrame = 16 << 20

// SessionVersion is the highest session protocol version this build
// speaks. Version 0 is the original single-shot protocol (one agent,
// one ack, close); version 1 keeps the session open for a stream of
// agent/ack exchanges with persistent per-direction gob codecs. The
// negotiated version is min(initiator, responder), so either side can
// force single-shot behaviour.
const SessionVersion = 1

// Endpoint is one side of the transfer protocol: a server identity plus
// the CA verifier used to check peers.
type Endpoint struct {
	Identity keys.Identity
	Verifier keys.Verifier
	// Plaintext disables the cryptographic channel (benchmark
	// baseline only).
	Plaintext bool
	// HandshakeTimeout bounds the handshake; zero means no deadline.
	HandshakeTimeout time.Duration
	// TransferTimeout bounds one whole SendAgent / ReceiveAgent
	// exchange (handshake, agent payload, ack); zero means no overall
	// deadline. A stalled peer or a connection that silently stops
	// draining then fails with a timeout instead of wedging the
	// dispatching goroutine forever.
	TransferTimeout time.Duration
	// OnAck, when set, runs after a receiver accepts an agent this
	// endpoint sent: receiver is the session's authenticated peer and
	// addr the connection's remote address. The accept ack already
	// proves "the agent now lives at addr", so the sender's naming
	// layer can rebind and push forwarding hints by piggybacking on
	// it — zero extra round-trips, no wire change. The hook runs on
	// the sending goroutine; keep it cheap and never let it block on
	// the network.
	OnAck func(a *agent.Agent, receiver names.Name, addr string)
}

// --- wire messages -----------------------------------------------------

type helloMsg struct {
	ServerName names.Name
	Cert       keys.Certificate
	Nonce      [32]byte
	EphPub     []byte // X25519 public key; empty in plaintext mode
	// Version is the sender's maximum session version. Gob omits zero
	// values, so a hello from an older binary decodes as Version 0 —
	// the single-shot protocol — and an old binary ignores the field
	// entirely; both directions of the upgrade interoperate.
	Version uint8
}

type authMsg struct {
	Sig []byte // signature over the handshake transcript
}

type agentMsg struct {
	Sender names.Name
	Data   []byte // gob-encoded agent
	// Manifest surfaces the agent's declared access manifest in the
	// envelope, so a receiver sees the claimed capability needs before
	// (and independently of) decoding the full agent. It must agree
	// with the manifest inside Data; a mismatch is rejected.
	Manifest *analysis.Manifest
}

type ackMsg struct {
	Accepted bool
	Reason   string
	// Shed marks a load-shedding rejection (admission tier over limit):
	// transient by contract, unlike an ordinary nack, and carrying an
	// optional retry-after hint in milliseconds. Gob omits zero values,
	// so acks from (and to) older binaries interoperate: a plain nack
	// decodes with Shed false, and an old sender ignores both fields.
	Shed             bool
	RetryAfterMillis int64
}

// framePool recycles the scratch buffers behind every frame encode and
// decode: steady-state transfers on a warm session allocate no framing
// memory.
var framePool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// hdrPad reserves space for the 4-byte length prefix at the front of a
// frame buffer; the real length is patched in before the single Write.
var hdrPad [4]byte

// gcmTagSize is AES-GCM's authentication-tag overhead; tagPad reserves
// room for it in the frame buffer ahead of sealing in place.
const gcmTagSize = 16

var tagPad [gcmTagSize]byte

// writeFrame sends a length-prefixed gob-encoded message (handshake
// messages; session payloads go through writeMsg). Header and body go
// out in one Write from a pooled buffer.
func writeFrame(w io.Writer, v any) error {
	buf := framePool.Get().(*bytes.Buffer)
	defer framePool.Put(buf)
	buf.Reset()
	buf.Write(hdrPad[:])
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("transfer: encode: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

// readFrame receives a length-prefixed gob-encoded message.
func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return ErrTooLarge
	}
	buf := framePool.Get().(*bytes.Buffer)
	defer framePool.Put(buf)
	buf.Reset()
	buf.Grow(int(n))
	data := buf.Bytes()[:n]
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	// Gob copies everything it keeps, so the pooled backing array is
	// safe to reuse after Decode returns.
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// frameFeeder hands a session's persistent gob decoder the plaintext of
// the current frame. Frames align with Encode calls on the peer, so one
// Decode consumes exactly one frame; EOF between frames is never
// surfaced because the next frame is fed before the next Decode.
type frameFeeder struct{ data []byte }

func (f *frameFeeder) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

// session is an established secure (or plaintext) channel.
type session struct {
	conn    net.Conn
	peer    names.Name
	version uint8       // negotiated session version
	aead    cipher.AEAD // nil in plaintext mode
	sendCtr uint64
	recvCtr uint64
	sendDir byte
	recvDir byte
	nbuf    [12]byte // GCM nonce scratch

	// wbuf frames outgoing messages: [4-byte len][payload][tag room],
	// sealed in place and written with one conn.Write. rbuf is the
	// receive scratch, opened in place. For version >= 1 the gob
	// codecs persist for the session's life, so type descriptors cross
	// the wire once per session instead of once per message.
	wbuf     *bytes.Buffer
	rbuf     []byte
	enc      *gob.Encoder
	feed     *frameFeeder
	dec      *gob.Decoder
	released bool
}

func newSession(conn net.Conn, peer names.Name, version uint8) *session {
	return &session{
		conn:    conn,
		peer:    peer,
		version: version,
		wbuf:    framePool.Get().(*bytes.Buffer),
		feed:    &frameFeeder{},
	}
}

// release returns the session's pooled buffers. Safe to call more than
// once; the session must not be used afterwards.
func (s *session) release() {
	if s.released {
		return
	}
	s.released = true
	framePool.Put(s.wbuf)
	s.wbuf = nil
	s.rbuf = nil
}

// transcriptHash binds the session key and signatures to every
// handshake field, preventing mix-and-match attacks.
func transcriptHash(a, b helloMsg) []byte {
	h := sha256.New()
	enc := func(m helloMsg) {
		h.Write([]byte(m.ServerName.String()))
		h.Write(m.Cert.PublicKey)
		h.Write(m.Nonce[:])
		h.Write(m.EphPub)
		// The version byte is deliberately NOT part of the transcript:
		// old binaries hash exactly these four fields, and including a
		// new one would break their signature check against upgraded
		// peers. A stripped version byte can only downgrade a session
		// to single-shot (version 0) — every security property of the
		// channel is identical across versions, so the worst a
		// downgrade costs is handshake amortization.
	}
	enc(a)
	enc(b)
	return h.Sum(nil)
}

// handshake runs the mutual-auth key agreement. initiator controls the
// message order; both sides end with the same session key. maxVersion
// caps the session version this side offers (the negotiated version is
// the minimum of both offers). A non-zero outer deadline (the
// transfer-wide one) is restored on exit so the handshake's own tighter
// deadline does not cancel it.
func (e *Endpoint) handshake(conn net.Conn, initiator bool, outer time.Time, maxVersion uint8) (*session, error) {
	if e.HandshakeTimeout > 0 {
		// Timeouts here are seconds-scale; the shared coarse clock
		// (internal/resource/clock.go) is millisecond-accurate, which is
		// plenty, and avoids a precise clock read per attempt.
		d := resource.CoarseTime().Add(e.HandshakeTimeout)
		if !outer.IsZero() && outer.Before(d) {
			d = outer
		}
		_ = conn.SetDeadline(d)
		defer conn.SetDeadline(outer)
	}
	var ephKey *ecdh.PrivateKey
	mine := helloMsg{ServerName: e.Identity.Name, Cert: e.Identity.Cert, Version: maxVersion}
	if _, err := rand.Read(mine.Nonce[:]); err != nil {
		return nil, err
	}
	if !e.Plaintext {
		var err error
		ephKey, err = ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		mine.EphPub = ephKey.PublicKey().Bytes()
	}

	var theirs helloMsg
	if initiator {
		if err := writeFrame(conn, mine); err != nil {
			return nil, err
		}
		if err := readFrame(conn, &theirs); err != nil {
			return nil, err
		}
	} else {
		if err := readFrame(conn, &theirs); err != nil {
			return nil, err
		}
		if err := writeFrame(conn, mine); err != nil {
			return nil, err
		}
	}

	// Certificate checks: CA signature, validity, and that the peer
	// is certified under the name it claims.
	if err := e.Verifier.Check(theirs.Cert, time.Now()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if theirs.Cert.Subject != theirs.ServerName {
		return nil, fmt.Errorf("%w: hello name %s does not match cert subject %s",
			ErrAuth, theirs.ServerName, theirs.Cert.Subject)
	}

	var ts []byte
	if initiator {
		ts = transcriptHash(mine, theirs)
	} else {
		ts = transcriptHash(theirs, mine)
	}

	// Exchange transcript signatures (initiator first), proving each
	// side holds the certified private key *for this handshake*.
	mySig := authMsg{Sig: e.Identity.Keys.Sign(ts)}
	var theirSig authMsg
	if initiator {
		if err := writeFrame(conn, mySig); err != nil {
			return nil, err
		}
		if err := readFrame(conn, &theirSig); err != nil {
			return nil, err
		}
	} else {
		if err := readFrame(conn, &theirSig); err != nil {
			return nil, err
		}
		if err := writeFrame(conn, mySig); err != nil {
			return nil, err
		}
	}
	if !keys.Verify(theirs.Cert.PublicKey, ts, theirSig.Sig) {
		return nil, fmt.Errorf("%w: bad transcript signature from %s", ErrAuth, theirs.ServerName)
	}

	version := maxVersion
	if theirs.Version < version {
		version = theirs.Version
	}
	s := newSession(conn, theirs.ServerName, version)
	if initiator {
		s.sendDir, s.recvDir = 1, 2
	} else {
		s.sendDir, s.recvDir = 2, 1
	}
	if e.Plaintext {
		return s, nil
	}
	if len(theirs.EphPub) == 0 {
		return nil, fmt.Errorf("%w: peer offered no key agreement", ErrAuth)
	}
	peerPub, err := ecdh.X25519().NewPublicKey(theirs.EphPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	shared, err := ephKey.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	// Session key = H(shared || transcript): binds the key to the
	// authenticated identities and nonces.
	kh := sha256.New()
	kh.Write(shared)
	kh.Write(ts)
	block, err := aes.NewCipher(kh.Sum(nil))
	if err != nil {
		return nil, err
	}
	s.aead, err = cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// transferDeadline applies TransferTimeout to conn and returns the
// resulting absolute deadline (zero when the timeout is unset). Like
// every transfer deadline it is computed on the shared coarse clock.
func (e *Endpoint) transferDeadline(conn net.Conn) time.Time {
	if e.TransferTimeout <= 0 {
		return time.Time{}
	}
	d := resource.CoarseTime().Add(e.TransferTimeout)
	_ = conn.SetDeadline(d)
	return d
}

// nonce fills the session's 12-byte GCM nonce scratch for direction dir
// and counter ctr.
func (s *session) nonce(dir byte, ctr uint64) []byte {
	s.nbuf[0] = dir
	binary.BigEndian.PutUint64(s.nbuf[4:], ctr)
	return s.nbuf[:]
}

// flushFrame seals wbuf's payload in place (the buffer already holds
// the 4-byte header reserve followed by the plaintext), patches the
// length prefix, and writes header + ciphertext with a single Write.
func (s *session) flushFrame() error {
	if s.aead != nil {
		// Reserve the GCM tag room, then seal with dst = plaintext[:0]
		// — the exact-overlap aliasing cipher.AEAD permits — so the
		// ciphertext lands where the plaintext was, no copy.
		s.wbuf.Write(tagPad[:])
		b := s.wbuf.Bytes()
		plain := b[4 : len(b)-gcmTagSize]
		sealed := s.aead.Seal(plain[:0], s.nonce(s.sendDir, s.sendCtr), plain, nil)
		s.sendCtr++
		binary.BigEndian.PutUint32(b[:4], uint32(len(sealed)))
		_, err := s.conn.Write(b[:4+len(sealed)])
		return err
	}
	b := s.wbuf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := s.conn.Write(b)
	return err
}

// writeMsg gob-encodes v straight into the session's frame buffer and
// sends it as one sealed frame: no intermediate encode buffer, no
// separate seal allocation, one Write. On version >= 1 sessions the
// encoder persists, so gob type descriptors are transmitted once per
// session rather than once per message.
func (s *session) writeMsg(v any) error {
	s.wbuf.Reset()
	s.wbuf.Write(hdrPad[:])
	var err error
	if s.version >= 1 {
		if s.enc == nil {
			s.enc = gob.NewEncoder(s.wbuf)
		}
		err = s.enc.Encode(v)
	} else {
		err = gob.NewEncoder(s.wbuf).Encode(v)
	}
	if err != nil {
		return fmt.Errorf("transfer: encode: %w", err)
	}
	return s.flushFrame()
}

// send seals (or passes through) one raw payload. Kept for tests that
// drive the frame layer directly; protocol messages use writeMsg.
func (s *session) send(payload []byte) error {
	s.wbuf.Reset()
	s.wbuf.Write(hdrPad[:])
	s.wbuf.Write(payload)
	return s.flushFrame()
}

// readPayload reads one frame into the session's receive scratch and
// opens it in place. The returned slice aliases s.rbuf and is valid
// until the next read. idleWait clears the read deadline while waiting
// for the frame header (a pooled session sits idle between transfers),
// then applies exchange as the deadline for the frame body and, via
// SetDeadline, the rest of the exchange.
func (s *session) readPayload(idleWait bool, exchange time.Duration) ([]byte, error) {
	var lenBuf [4]byte
	if idleWait {
		_ = s.conn.SetDeadline(time.Time{})
	}
	if _, err := io.ReadFull(s.conn, lenBuf[:]); err != nil {
		return nil, err
	}
	if idleWait && exchange > 0 {
		_ = s.conn.SetDeadline(resource.CoarseTime().Add(exchange))
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	if cap(s.rbuf) < int(n) {
		s.rbuf = make([]byte, n)
	}
	data := s.rbuf[:n]
	if _, err := io.ReadFull(s.conn, data); err != nil {
		return nil, err
	}
	if s.aead == nil {
		return data, nil
	}
	plain, err := s.aead.Open(data[:0], s.nonce(s.recvDir, s.recvCtr), data, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIntegrity, err)
	}
	s.recvCtr++
	return plain, nil
}

// readMsg receives one frame and gob-decodes it into v. On version >= 1
// sessions the decoder persists across messages, mirroring writeMsg's
// persistent encoder.
func (s *session) readMsg(v any, idleWait bool, exchange time.Duration) error {
	plain, err := s.readPayload(idleWait, exchange)
	if err != nil {
		return err
	}
	if s.version >= 1 {
		s.feed.data = plain
		if s.dec == nil {
			s.dec = gob.NewDecoder(s.feed)
		}
		return s.dec.Decode(v)
	}
	return gob.NewDecoder(bytes.NewReader(plain)).Decode(v)
}

// recv reads and opens one payload, returning a copy the caller may
// keep. A tampered, replayed or reordered frame fails authentication
// here.
func (s *session) recv() ([]byte, error) {
	plain, err := s.readPayload(false, 0)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), plain...), nil
}

// connect dials nothing — conn is already established — but runs the
// initiator handshake offering session streaming. The returned session
// is what the Pool checks in and out.
func (e *Endpoint) connect(conn net.Conn) (*session, error) {
	s, err := e.handshake(conn, true, e.transferDeadline(conn), SessionVersion)
	if err != nil {
		return nil, err
	}
	// The handshake ran under the transfer deadline; a pooled session
	// must not inherit it into its idle lifetime.
	_ = conn.SetDeadline(time.Time{})
	return s, nil
}

// exchange runs one agent/ack exchange on an established session: the
// agent is sanitized, serialized and framed directly (no intermediate
// copy), and the receiver's verdict is awaited.
func (e *Endpoint) exchange(s *session, a *agent.Agent) error {
	a.SanitizeForTransfer()
	data, err := a.Encode()
	if err != nil {
		return err
	}
	if err := s.writeMsg(agentMsg{
		Sender:   e.Identity.Name,
		Data:     data,
		Manifest: a.Manifest,
	}); err != nil {
		return err
	}
	var ack ackMsg
	if err := s.readMsg(&ack, false, 0); err != nil {
		return err
	}
	if !ack.Accepted {
		if ack.Shed {
			// Reconstruct the typed shed error sender-side: it matches
			// admission.ErrShed (transient to the retry classifier, NOT
			// ErrRejected) and carries the receiver's retry-after hint.
			return &admission.ShedError{
				Cause:      ack.Reason,
				RetryAfter: time.Duration(ack.RetryAfterMillis) * time.Millisecond,
			}
		}
		return fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	if e.OnAck != nil {
		e.OnAck(a, s.peer, s.conn.RemoteAddr().String())
	}
	return nil
}

// sendOn runs one transfer on a (possibly reused) session under the
// endpoint's per-exchange deadline; on success the deadline is cleared
// so the session can idle in the pool.
func (e *Endpoint) sendOn(s *session, a *agent.Agent) error {
	if e.TransferTimeout > 0 {
		_ = s.conn.SetDeadline(resource.CoarseTime().Add(e.TransferTimeout))
	}
	if err := e.exchange(s, a); err != nil {
		return err
	}
	_ = s.conn.SetDeadline(time.Time{})
	return nil
}

// SendAgent transfers an agent over conn and waits for the receiver's
// accept/reject decision. The agent's state is sanitized (host handles
// stripped) before serialization. This is the single-shot path — it
// offers session version 0, exactly the pre-pooling wire protocol; the
// Pool is the amortized path.
func (e *Endpoint) SendAgent(conn net.Conn, a *agent.Agent) error {
	s, err := e.handshake(conn, true, e.transferDeadline(conn), 0)
	if err != nil {
		return err
	}
	defer s.release()
	return e.exchange(s, a)
}

// receiveOne accepts one agent exchange on an established session. The
// returned agent is nil when the accept callback rejected it (the nack
// has been sent; the session remains usable). fatal reports that the
// session is no longer usable — an I/O error, a protocol violation, or
// a peer that lied about its identity.
func (e *Endpoint) receiveOne(s *session, idleWait bool, accept func(*agent.Agent, names.Name) error) (a *agent.Agent, fatal bool, err error) {
	var msg agentMsg
	if err := s.readMsg(&msg, idleWait, e.TransferTimeout); err != nil {
		return nil, true, err
	}
	// The transport sender must be the authenticated peer: a server
	// cannot forward agents while claiming another server sent them.
	if msg.Sender != s.peer {
		_ = s.sendAck(false, "sender identity mismatch")
		return nil, true, fmt.Errorf("%w: message sender %s != channel peer %s", ErrAuth, msg.Sender, s.peer)
	}
	a, err = agent.Decode(msg.Data)
	if err != nil {
		_ = s.sendAck(false, "malformed agent")
		return nil, true, err
	}
	// The envelope manifest and the agent's in-body manifest must be
	// the same declaration: a sender advertising narrower needs in the
	// envelope than the agent actually claims (or vice versa) is
	// rejected before admission even looks at the code.
	if !manifestsAgree(msg.Manifest, a.Manifest) {
		_ = s.sendAck(false, "manifest envelope mismatch")
		return nil, true, fmt.Errorf("%w: envelope manifest does not match agent manifest", ErrRejected)
	}
	if accept != nil {
		if err := accept(a, s.peer); err != nil {
			// A load-shed travels as its own ack shape (not a plain
			// nack): the sender reconstructs a transient ShedError with
			// the retry-after hint instead of a permanent ErrRejected.
			var shed *admission.ShedError
			if errors.As(err, &shed) {
				if ackErr := s.writeMsg(ackMsg{
					Reason:           shed.Cause,
					Shed:             true,
					RetryAfterMillis: shed.RetryAfter.Milliseconds(),
				}); ackErr != nil {
					return nil, true, ackErr
				}
				return nil, false, err
			}
			if ackErr := s.sendAck(false, err.Error()); ackErr != nil {
				return nil, true, ackErr
			}
			// An application-level rejection does not poison the
			// channel: the next agent on this session may be welcome.
			return nil, false, fmt.Errorf("%w: %v", ErrRejected, err)
		}
	}
	if err := s.sendAck(true, ""); err != nil {
		return nil, true, err
	}
	return a, false, nil
}

// ReceiveAgent accepts one agent transfer on conn. The accept callback
// inspects the decoded agent (credential verification, bundle
// verification, admission control) and returns an error to reject it;
// the rejection reason travels back to the sender. Like SendAgent this
// is the single-shot path (session version 0); servers accept streams
// with ServeConn.
func (e *Endpoint) ReceiveAgent(conn net.Conn, accept func(*agent.Agent, names.Name) error) (*agent.Agent, error) {
	s, err := e.handshake(conn, false, e.transferDeadline(conn), 0)
	if err != nil {
		return nil, err
	}
	defer s.release()
	a, _, err := e.receiveOne(s, false, accept)
	if err != nil {
		return nil, err
	}
	return a, nil
}

// ServeConn accepts a stream of agent transfers on conn: one handshake,
// then agent/ack exchanges until the peer closes the connection (or a
// fatal protocol error). Each accepted agent is passed to handle before
// the next exchange begins — handle should hand off quickly (the server
// spawns a hosting goroutine). With a version-0 peer exactly one
// exchange runs, preserving single-shot interop. The returned error is
// nil for a cleanly closed session.
func (e *Endpoint) ServeConn(conn net.Conn, accept func(*agent.Agent, names.Name) error, handle func(*agent.Agent)) error {
	s, err := e.handshake(conn, false, time.Time{}, SessionVersion)
	if err != nil {
		return err
	}
	defer s.release()
	_ = conn.SetDeadline(time.Time{})
	for {
		a, fatal, err := e.receiveOne(s, true, accept)
		switch {
		case err == nil:
			if a != nil && handle != nil {
				handle(a)
			}
		case fatal:
			if errors.Is(err, io.EOF) {
				return nil // peer closed between exchanges
			}
			return err
		}
		if s.version < 1 {
			return nil
		}
	}
}

// manifestsAgree reports whether the envelope and in-agent manifests
// are the same declaration (both absent, or mutually covering).
func manifestsAgree(env, carried *analysis.Manifest) bool {
	if env == nil && carried == nil {
		return true
	}
	if env == nil || carried == nil {
		return false
	}
	return env.Covers(carried) && carried.Covers(env)
}

func (s *session) sendAck(ok bool, reason string) error {
	return s.writeMsg(ackMsg{Accepted: ok, Reason: reason})
}
