// Package transfer implements the server-to-server agent transfer
// protocol (§2, §4): "the primary function of this protocol is to
// securely transfer an agent from one server to another."
//
// Security properties against the paper's open-network threat model:
//
//   - mutual authentication: both endpoints prove possession of the
//     private key matching a CA-certified server certificate, over
//     fresh nonces (no replayable handshakes);
//   - confidentiality and integrity: an X25519 ephemeral key agreement
//     bound to the authenticated transcript yields an AES-GCM session
//     key; every frame is sealed;
//   - replay protection: GCM nonces are per-direction counters, so a
//     recorded frame re-injected later (or reordered) fails to
//     authenticate.
//
// A plaintext mode exists solely as the baseline for experiment C7's
// "cost of security" measurement.
package transfer

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/agent"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/vm/analysis"
)

// Errors.
var (
	ErrAuth      = errors.New("transfer: peer authentication failed")
	ErrIntegrity = errors.New("transfer: frame integrity check failed")
	ErrRejected  = errors.New("transfer: agent rejected by receiver")
	ErrTooLarge  = errors.New("transfer: frame exceeds size limit")
)

// MaxFrame bounds a single frame (handshake message or sealed agent).
const MaxFrame = 16 << 20

// Endpoint is one side of the transfer protocol: a server identity plus
// the CA verifier used to check peers.
type Endpoint struct {
	Identity keys.Identity
	Verifier keys.Verifier
	// Plaintext disables the cryptographic channel (benchmark
	// baseline only).
	Plaintext bool
	// HandshakeTimeout bounds the handshake; zero means no deadline.
	HandshakeTimeout time.Duration
	// TransferTimeout bounds one whole SendAgent / ReceiveAgent
	// exchange (handshake, agent payload, ack); zero means no overall
	// deadline. A stalled peer or a connection that silently stops
	// draining then fails with a timeout instead of wedging the
	// dispatching goroutine forever.
	TransferTimeout time.Duration
}

// --- wire messages -----------------------------------------------------

type helloMsg struct {
	ServerName names.Name
	Cert       keys.Certificate
	Nonce      [32]byte
	EphPub     []byte // X25519 public key; empty in plaintext mode
}

type authMsg struct {
	Sig []byte // signature over the handshake transcript
}

type agentMsg struct {
	Sender names.Name
	Data   []byte // gob-encoded agent
	// Manifest surfaces the agent's declared access manifest in the
	// envelope, so a receiver sees the claimed capability needs before
	// (and independently of) decoding the full agent. It must agree
	// with the manifest inside Data; a mismatch is rejected.
	Manifest *analysis.Manifest
}

type ackMsg struct {
	Accepted bool
	Reason   string
}

// writeFrame sends a length-prefixed gob-encoded message.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("transfer: encode: %w", err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(buf.Len()))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame receives a length-prefixed gob-encoded message.
func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return ErrTooLarge
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r, data); err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// session is an established secure (or plaintext) channel.
type session struct {
	conn    net.Conn
	peer    names.Name
	aead    cipher.AEAD // nil in plaintext mode
	sendCtr uint64
	recvCtr uint64
	sendDir byte
	recvDir byte
}

// transcriptHash binds the session key and signatures to every
// handshake field, preventing mix-and-match attacks.
func transcriptHash(a, b helloMsg) []byte {
	h := sha256.New()
	enc := func(m helloMsg) {
		h.Write([]byte(m.ServerName.String()))
		h.Write(m.Cert.PublicKey)
		h.Write(m.Nonce[:])
		h.Write(m.EphPub)
	}
	enc(a)
	enc(b)
	return h.Sum(nil)
}

// handshake runs the mutual-auth key agreement. initiator controls the
// message order; both sides end with the same session key. A non-zero
// outer deadline (the transfer-wide one) is restored on exit so the
// handshake's own tighter deadline does not cancel it.
func (e *Endpoint) handshake(conn net.Conn, initiator bool, outer time.Time) (*session, error) {
	if e.HandshakeTimeout > 0 {
		d := time.Now().Add(e.HandshakeTimeout)
		if !outer.IsZero() && outer.Before(d) {
			d = outer
		}
		_ = conn.SetDeadline(d)
		defer conn.SetDeadline(outer)
	}
	var ephKey *ecdh.PrivateKey
	mine := helloMsg{ServerName: e.Identity.Name, Cert: e.Identity.Cert}
	if _, err := rand.Read(mine.Nonce[:]); err != nil {
		return nil, err
	}
	if !e.Plaintext {
		var err error
		ephKey, err = ecdh.X25519().GenerateKey(rand.Reader)
		if err != nil {
			return nil, err
		}
		mine.EphPub = ephKey.PublicKey().Bytes()
	}

	var theirs helloMsg
	if initiator {
		if err := writeFrame(conn, mine); err != nil {
			return nil, err
		}
		if err := readFrame(conn, &theirs); err != nil {
			return nil, err
		}
	} else {
		if err := readFrame(conn, &theirs); err != nil {
			return nil, err
		}
		if err := writeFrame(conn, mine); err != nil {
			return nil, err
		}
	}

	// Certificate checks: CA signature, validity, and that the peer
	// is certified under the name it claims.
	if err := e.Verifier.Check(theirs.Cert, time.Now()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	if theirs.Cert.Subject != theirs.ServerName {
		return nil, fmt.Errorf("%w: hello name %s does not match cert subject %s",
			ErrAuth, theirs.ServerName, theirs.Cert.Subject)
	}

	var ts []byte
	if initiator {
		ts = transcriptHash(mine, theirs)
	} else {
		ts = transcriptHash(theirs, mine)
	}

	// Exchange transcript signatures (initiator first), proving each
	// side holds the certified private key *for this handshake*.
	mySig := authMsg{Sig: e.Identity.Keys.Sign(ts)}
	var theirSig authMsg
	if initiator {
		if err := writeFrame(conn, mySig); err != nil {
			return nil, err
		}
		if err := readFrame(conn, &theirSig); err != nil {
			return nil, err
		}
	} else {
		if err := readFrame(conn, &theirSig); err != nil {
			return nil, err
		}
		if err := writeFrame(conn, mySig); err != nil {
			return nil, err
		}
	}
	if !keys.Verify(theirs.Cert.PublicKey, ts, theirSig.Sig) {
		return nil, fmt.Errorf("%w: bad transcript signature from %s", ErrAuth, theirs.ServerName)
	}

	s := &session{conn: conn, peer: theirs.ServerName}
	if initiator {
		s.sendDir, s.recvDir = 1, 2
	} else {
		s.sendDir, s.recvDir = 2, 1
	}
	if e.Plaintext {
		return s, nil
	}
	if len(theirs.EphPub) == 0 {
		return nil, fmt.Errorf("%w: peer offered no key agreement", ErrAuth)
	}
	peerPub, err := ecdh.X25519().NewPublicKey(theirs.EphPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	shared, err := ephKey.ECDH(peerPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAuth, err)
	}
	// Session key = H(shared || transcript): binds the key to the
	// authenticated identities and nonces.
	kh := sha256.New()
	kh.Write(shared)
	kh.Write(ts)
	block, err := aes.NewCipher(kh.Sum(nil))
	if err != nil {
		return nil, err
	}
	s.aead, err = cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// transferDeadline applies TransferTimeout to conn and returns the
// resulting absolute deadline (zero when the timeout is unset).
func (e *Endpoint) transferDeadline(conn net.Conn) time.Time {
	if e.TransferTimeout <= 0 {
		return time.Time{}
	}
	d := time.Now().Add(e.TransferTimeout)
	_ = conn.SetDeadline(d)
	return d
}

// nonce builds the 12-byte GCM nonce for direction dir and counter ctr.
func nonce(dir byte, ctr uint64) []byte {
	n := make([]byte, 12)
	n[0] = dir
	binary.BigEndian.PutUint64(n[4:], ctr)
	return n
}

// send seals (or passes through) one payload.
func (s *session) send(payload []byte) error {
	if s.aead == nil {
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)))
		if _, err := s.conn.Write(lenBuf[:]); err != nil {
			return err
		}
		_, err := s.conn.Write(payload)
		return err
	}
	sealed := s.aead.Seal(nil, nonce(s.sendDir, s.sendCtr), payload, nil)
	s.sendCtr++
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(sealed)))
	if _, err := s.conn.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := s.conn.Write(sealed)
	return err
}

// recv reads and opens one payload. A tampered, replayed or reordered
// frame fails authentication here.
func (s *session) recv() ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(s.conn, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, ErrTooLarge
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(s.conn, data); err != nil {
		return nil, err
	}
	if s.aead == nil {
		return data, nil
	}
	plain, err := s.aead.Open(nil, nonce(s.recvDir, s.recvCtr), data, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrIntegrity, err)
	}
	s.recvCtr++
	return plain, nil
}

// SendAgent transfers an agent over conn and waits for the receiver's
// accept/reject decision. The agent's state is sanitized (host handles
// stripped) before serialization.
func (e *Endpoint) SendAgent(conn net.Conn, a *agent.Agent) error {
	s, err := e.handshake(conn, true, e.transferDeadline(conn))
	if err != nil {
		return err
	}
	a.SanitizeForTransfer()
	data, err := a.Encode()
	if err != nil {
		return err
	}
	var msg bytes.Buffer
	if err := gob.NewEncoder(&msg).Encode(agentMsg{
		Sender:   e.Identity.Name,
		Data:     data,
		Manifest: a.Manifest,
	}); err != nil {
		return err
	}
	if err := s.send(msg.Bytes()); err != nil {
		return err
	}
	ackData, err := s.recv()
	if err != nil {
		return err
	}
	var ack ackMsg
	if err := gob.NewDecoder(bytes.NewReader(ackData)).Decode(&ack); err != nil {
		return err
	}
	if !ack.Accepted {
		return fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
	}
	return nil
}

// ReceiveAgent accepts one agent transfer on conn. The accept callback
// inspects the decoded agent (credential verification, bundle
// verification, admission control) and returns an error to reject it;
// the rejection reason travels back to the sender.
func (e *Endpoint) ReceiveAgent(conn net.Conn, accept func(*agent.Agent, names.Name) error) (*agent.Agent, error) {
	s, err := e.handshake(conn, false, e.transferDeadline(conn))
	if err != nil {
		return nil, err
	}
	msgData, err := s.recv()
	if err != nil {
		return nil, err
	}
	var msg agentMsg
	if err := gob.NewDecoder(bytes.NewReader(msgData)).Decode(&msg); err != nil {
		return nil, err
	}
	// The transport sender must be the authenticated peer: a server
	// cannot forward agents while claiming another server sent them.
	if msg.Sender != s.peer {
		_ = s.sendAck(false, "sender identity mismatch")
		return nil, fmt.Errorf("%w: message sender %s != channel peer %s", ErrAuth, msg.Sender, s.peer)
	}
	a, err := agent.Decode(msg.Data)
	if err != nil {
		_ = s.sendAck(false, "malformed agent")
		return nil, err
	}
	// The envelope manifest and the agent's in-body manifest must be
	// the same declaration: a sender advertising narrower needs in the
	// envelope than the agent actually claims (or vice versa) is
	// rejected before admission even looks at the code.
	if !manifestsAgree(msg.Manifest, a.Manifest) {
		_ = s.sendAck(false, "manifest envelope mismatch")
		return nil, fmt.Errorf("%w: envelope manifest does not match agent manifest", ErrRejected)
	}
	if accept != nil {
		if err := accept(a, s.peer); err != nil {
			_ = s.sendAck(false, err.Error())
			return nil, fmt.Errorf("%w: %v", ErrRejected, err)
		}
	}
	if err := s.sendAck(true, ""); err != nil {
		return nil, err
	}
	return a, nil
}

// manifestsAgree reports whether the envelope and in-agent manifests
// are the same declaration (both absent, or mutually covering).
func manifestsAgree(env, carried *analysis.Manifest) bool {
	if env == nil && carried == nil {
		return true
	}
	if env == nil || carried == nil {
		return false
	}
	return env.Covers(carried) && carried.Covers(env)
}

func (s *session) sendAck(ok bool, reason string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ackMsg{Accepted: ok, Reason: reason}); err != nil {
		return err
	}
	return s.send(buf.Bytes())
}
