package transfer

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/agent"
	"repro/internal/asl"
	"repro/internal/cred"
	"repro/internal/keys"
	"repro/internal/names"
	"repro/internal/netsim"
	"repro/internal/vm"
)

type world struct {
	reg  *keys.Registry
	net  *netsim.Network
	a, b *Endpoint
}

func newWorld(t *testing.T) *world {
	t.Helper()
	reg, err := keys.NewRegistry(names.Principal("umn.edu", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n names.Name) *Endpoint {
		id, err := keys.NewIdentity(reg, n, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		// TransferTimeout mirrors production configuration (server.New
		// always sets one): a corrupted length prefix that inflates a
		// frame's claimed size must surface as a timeout on both sides,
		// not wedge reader and ack-waiter forever.
		return &Endpoint{
			Identity:         id,
			Verifier:         reg.Verifier(),
			HandshakeTimeout: 2 * time.Second,
			TransferTimeout:  5 * time.Second,
		}
	}
	return &world{
		reg: reg,
		net: netsim.NewNetwork(),
		a:   mk(names.Server("umn.edu", "s-a")),
		b:   mk(names.Server("acme.com", "s-b")),
	}
}

func testAgent(t *testing.T, reg *keys.Registry) *agent.Agent {
	t.Helper()
	owner, err := keys.NewIdentity(reg, names.Principal("umn.edu", "alice"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cred.Issue(owner, names.Agent("umn.edu", "traveller"),
		names.Principal("umn.edu", "app"), cred.NewRightSet(cred.All), time.Hour, "home")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := asl.Compile("module m\nvar visits = 0\nfunc main() { visits = visits + 1 return visits }")
	if err != nil {
		t.Fatal(err)
	}
	a, err := agent.New(c, "m", []vm.Module{*mod}, agent.Itinerary{})
	if err != nil {
		t.Fatal(err)
	}
	a.State["visits"] = vm.I(3)
	return a
}

// exchange runs one transfer over the simulated network and returns the
// received agent (or error) and the sender-side error.
func (w *world) exchange(t *testing.T, a *agent.Agent, accept func(*agent.Agent, names.Name) error) (*agent.Agent, error, error) {
	t.Helper()
	l, err := w.net.Listen("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var (
		got     *agent.Agent
		recvErr error
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			recvErr = err
			return
		}
		defer conn.Close()
		got, recvErr = w.b.ReceiveAgent(conn, accept)
	}()
	conn, err := w.net.Dial("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	sendErr := w.a.SendAgent(conn, a)
	conn.Close()
	wg.Wait()
	return got, recvErr, sendErr
}

func TestTransferRoundTrip(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	got, recvErr, sendErr := w.exchange(t, a, nil)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if got.Name != a.Name || !got.State["visits"].Equal(vm.I(3)) {
		t.Fatalf("agent mangled: %+v", got)
	}
	if err := got.Credentials.Verify(w.reg.Verifier(), time.Now()); err != nil {
		t.Fatalf("credentials broken after transfer: %v", err)
	}
}

func TestTransferStripsHandles(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	a.State["proxy"] = vm.H(42)
	got, recvErr, sendErr := w.exchange(t, a, nil)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if got.State["proxy"].Kind != vm.KindNil {
		t.Fatal("host handle crossed the wire")
	}
}

func TestReceiverRejection(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	reject := func(*agent.Agent, names.Name) error { return errors.New("no capacity") }
	got, recvErr, sendErr := w.exchange(t, a, reject)
	if got != nil {
		t.Fatal("rejected agent returned")
	}
	if !errors.Is(recvErr, ErrRejected) {
		t.Fatalf("recv = %v", recvErr)
	}
	if !errors.Is(sendErr, ErrRejected) {
		t.Fatalf("send = %v", sendErr)
	}
}

func TestShedAckRoundTrip(t *testing.T) {
	// A load-shedding rejection must cross the wire as its own ack
	// shape and be reconstructed sender-side as a typed ShedError:
	// matching admission.ErrShed (transient), NOT ErrRejected
	// (permanent), with the receiver's retry-after hint intact.
	w := newWorld(t)
	a := testAgent(t, w.reg)
	shed := func(*agent.Agent, names.Name) error {
		return &admission.ShedError{Tier: "bulk", Cause: "rate", RetryAfter: 120 * time.Millisecond}
	}
	got, recvErr, sendErr := w.exchange(t, a, shed)
	if got != nil {
		t.Fatal("shed agent returned")
	}
	if !errors.Is(recvErr, admission.ErrShed) {
		t.Fatalf("recv = %v, want ErrShed", recvErr)
	}
	if !errors.Is(sendErr, admission.ErrShed) {
		t.Fatalf("send = %v, want ErrShed", sendErr)
	}
	if errors.Is(sendErr, ErrRejected) {
		t.Fatal("shed must not look like a permanent rejection to the sender")
	}
	var se *admission.ShedError
	if !errors.As(sendErr, &se) {
		t.Fatalf("send = %T, want *admission.ShedError", sendErr)
	}
	if se.RetryAfter != 120*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want 120ms", se.RetryAfter)
	}
	if se.Cause != "rate" {
		t.Fatalf("cause = %q, want rate", se.Cause)
	}
}

func TestShedKeepsSessionUsable(t *testing.T) {
	// A shed is an application-level deferral, not a protocol failure:
	// the same session must carry a subsequent transfer once the
	// receiver has room. Drive two transfers over one session by hand.
	w := newWorld(t)
	a := testAgent(t, w.reg)
	l, err := w.net.Listen("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	shedFirst := true
	accept := func(*agent.Agent, names.Name) error {
		if shedFirst {
			shedFirst = false
			return &admission.ShedError{Cause: "concurrency", RetryAfter: 10 * time.Millisecond}
		}
		return nil
	}
	recvDone := make(chan error, 2)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			recvDone <- err
			return
		}
		defer conn.Close()
		s, err := w.b.handshake(conn, false, time.Time{}, 0)
		if err != nil {
			recvDone <- err
			return
		}
		for i := 0; i < 2; i++ {
			_, fatal, err := w.b.receiveOne(s, false, accept)
			if err != nil && fatal {
				recvDone <- err
				return
			}
			recvDone <- err
		}
	}()

	conn, err := w.net.Dial("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.a.handshake(conn, true, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.a.sendOn(s, a); !errors.Is(err, admission.ErrShed) {
		t.Fatalf("first transfer: %v, want ErrShed", err)
	}
	if err := <-recvDone; !errors.Is(err, admission.ErrShed) {
		t.Fatalf("receiver first: %v, want ErrShed", err)
	}
	if err := w.a.sendOn(s, a); err != nil {
		t.Fatalf("second transfer on same session: %v", err)
	}
	if err := <-recvDone; err != nil {
		t.Fatalf("receiver second: %v", err)
	}
}

func TestC7_EavesdropperSeesNoPlaintext(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	var captured []byte
	w.net.SetTap(func(from, to string, data []byte) []byte {
		captured = append(captured, data...)
		return data
	})
	_, recvErr, sendErr := w.exchange(t, a, nil)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	// The agent's owner name appears in credentials; the sealed
	// channel must not leak it. (Handshake certificates do carry the
	// *server* names — that is public information.)
	if containsSub(captured, []byte("traveller")) {
		t.Fatal("agent identity visible on the wire")
	}
	if containsSub(captured, []byte("visits")) {
		t.Fatal("agent state visible on the wire")
	}
}

func TestC7_PlaintextModeLeaks(t *testing.T) {
	// Sanity check of the baseline: without the secure channel the
	// eavesdropper DOES see agent internals. This is the contrast
	// case for the experiment above.
	w := newWorld(t)
	w.a.Plaintext = true
	w.b.Plaintext = true
	a := testAgent(t, w.reg)
	var captured []byte
	w.net.SetTap(func(from, to string, data []byte) []byte {
		captured = append(captured, data...)
		return data
	})
	_, recvErr, sendErr := w.exchange(t, a, nil)
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if !containsSub(captured, []byte("traveller")) {
		t.Fatal("expected plaintext leak in baseline mode")
	}
}

func TestC7_TamperDetected(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	frames := 0
	w.net.SetTap(func(from, to string, data []byte) []byte {
		frames++
		if frames > 4 { // let the 4 handshake frames through, corrupt the payload
			data[len(data)/2] ^= 0x01
		}
		return data
	})
	_, recvErr, sendErr := w.exchange(t, a, nil)
	if recvErr == nil && sendErr == nil {
		t.Fatal("tampered transfer succeeded")
	}
	if recvErr != nil && !errors.Is(recvErr, ErrIntegrity) {
		// Depending on which frame was hit the failure may surface as
		// an integrity error or a read error after rejection; but it
		// must never be silent success.
		t.Logf("receiver error (acceptable): %v", recvErr)
	}
}

func TestC7_ImpersonationRejected(t *testing.T) {
	// A server whose certificate comes from an untrusted CA cannot
	// complete the handshake.
	w := newWorld(t)
	rogueReg, err := keys.NewRegistry(names.Principal("evil.org", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	rogueID, err := keys.NewIdentity(rogueReg, names.Server("acme.com", "s-b"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w.a = &Endpoint{Identity: rogueID, Verifier: rogueReg.Verifier(), HandshakeTimeout: time.Second}
	a := testAgent(t, w.reg)
	_, recvErr, sendErr := w.exchange(t, a, nil)
	if recvErr == nil {
		t.Fatal("receiver accepted impostor")
	}
	if !errors.Is(recvErr, ErrAuth) {
		t.Fatalf("recv = %v, want auth failure", recvErr)
	}
	_ = sendErr // sender fails too (its CA doesn't trust the honest side)
}

func TestC7_StolenNameRejected(t *testing.T) {
	// The adversary presents a valid certificate for its OWN name but
	// claims a different server name in the hello.
	w := newWorld(t)
	mallory, err := keys.NewIdentity(w.reg, names.Server("evil.org", "mallory"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Mallory uses her real cert but labels herself as s-a.
	w.a.Identity = keys.Identity{
		Name: names.Server("umn.edu", "s-a"),
		Keys: mallory.Keys,
		Cert: mallory.Cert,
	}
	a := testAgent(t, w.reg)
	_, recvErr, _ := w.exchange(t, a, nil)
	if !errors.Is(recvErr, ErrAuth) {
		t.Fatalf("recv = %v, want auth failure", recvErr)
	}
}

func TestC7_ReplayRejected(t *testing.T) {
	// The adversary records the (encrypted) agent frame and replays it
	// inside the same session. The per-direction counter nonce makes
	// the replay fail authentication.
	w := newWorld(t)
	a := testAgent(t, w.reg)

	l, err := w.net.Listen("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	recvDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			recvDone <- err
			return
		}
		defer conn.Close()
		// Receive the real agent, then try to read ANOTHER message
		// from the same session (the replayed frame).
		s, err := w.b.handshake(conn, false, time.Time{}, 0)
		if err != nil {
			recvDone <- err
			return
		}
		if _, err := s.recv(); err != nil { // legitimate frame
			recvDone <- err
			return
		}
		_ = s.sendAck(true, "")
		_, err = s.recv() // replayed frame must fail here
		recvDone <- err
	}()

	conn, err := w.net.Dial("b:7000")
	if err != nil {
		t.Fatal(err)
	}
	s, err := w.a.handshake(conn, true, time.Time{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.SanitizeForTransfer()
	data, _ := a.Encode()
	if err := s.send(data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.recv(); err != nil { // ack
		t.Fatal(err)
	}
	// Replay: re-send the identical sealed bytes by rewinding the
	// counter, as a wire-level adversary would.
	s.sendCtr = 0
	if err := s.send(data); err != nil {
		t.Fatal(err)
	}
	err = <-recvDone
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed frame accepted: %v", err)
	}
}

func TestC7_DowngradeRejected(t *testing.T) {
	// A man-in-the-middle (or misconfigured peer) tries to run the
	// session without key agreement against a secure endpoint. The
	// secure side must refuse rather than silently fall back to
	// plaintext.
	w := newWorld(t)
	w.a.Plaintext = true // sender offers no key agreement
	a := testAgent(t, w.reg)
	_, recvErr, sendErr := w.exchange(t, a, nil)
	if recvErr == nil && sendErr == nil {
		t.Fatal("secure endpoint accepted a plaintext session")
	}
	if recvErr != nil && !errors.Is(recvErr, ErrAuth) {
		t.Logf("receiver error (acceptable, must not be nil): %v", recvErr)
	}
}

func TestTransferOverRealTCP(t *testing.T) {
	w := newWorld(t)
	a := testAgent(t, w.reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recvDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			recvDone <- err
			return
		}
		defer conn.Close()
		_, err = w.b.ReceiveAgent(conn, nil)
		recvDone <- err
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := w.a.SendAgent(conn, a); err != nil {
		t.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
