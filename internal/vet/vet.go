// Package vet is the shared driver behind `aslc -vet` and the
// ajanta-vet command: it compiles ASL sources, runs the static-analysis
// passes (internal/vm/analysis) and flattens everything — compile
// errors, analysis failures, lint findings — into one position-sorted
// diagnostic list with stable codes. Both tools print the same list;
// only the framing (single file vs. many, text vs. JSON) differs.
package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/asl"
	"repro/internal/vm/analysis"
)

// Diagnostic codes for the phases before lint. Lint findings carry
// their own ANA001..ANA004 codes from the analysis package.
const (
	// CodeCompile marks a compile (lex/parse/semantic) error.
	CodeCompile = "ASL000"
	// CodeAnalysis marks a module the analyzer rejected outright
	// (failed bytecode verification or abstract interpretation); such
	// a module would also be rejected at every server's arrival gate.
	CodeAnalysis = "ANA000"
)

// Diagnostic is one finding, addressed by source position when known.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
	Code string `json:"code"`
	Msg  string `json:"msg"`
	// Module and Func locate lint findings in the compiled bundle.
	Module string `json:"module,omitempty"`
	Func   string `json:"func,omitempty"`
}

// String renders the conventional file:line:col: CODE: msg form,
// dropping position parts that are unknown.
func (d Diagnostic) String() string {
	loc := d.File
	if d.Line > 0 {
		loc = fmt.Sprintf("%s:%d", loc, d.Line)
		if d.Col > 0 {
			loc = fmt.Sprintf("%s:%d", loc, d.Col)
		}
	}
	return fmt.Sprintf("%s: %s: %s", loc, d.Code, d.Msg)
}

// Result is the outcome of vetting one source file.
type Result struct {
	File        string
	Diagnostics []Diagnostic
	// Manifest is the module's computed access manifest; nil when the
	// source did not compile or analyze.
	Manifest *analysis.Manifest
}

// Source vets one ASL source. Every diagnostic the toolchain can
// produce for it is returned — compilation continues past the first
// error, and lint runs whenever compilation succeeds.
func Source(file, src string) Result {
	res := Result{File: file}
	mod, err := asl.Compile(src)
	if err != nil {
		for _, e := range asl.AllErrors(err) {
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				File: file, Line: e.Line, Col: e.Col,
				Code: CodeCompile, Msg: e.Msg,
			})
		}
		return res
	}
	ma, err := analysis.AnalyzeModule(mod)
	if err != nil {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			File: file, Code: CodeAnalysis, Msg: err.Error(),
		})
		return res
	}
	res.Manifest = ma.Manifest
	for _, d := range analysis.Lint(ma) {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			File: file, Line: int(d.Pos.Line), Col: int(d.Pos.Col),
			Code: d.Code, Msg: d.Msg, Module: d.Module, Func: d.Func,
		})
	}
	sortDiags(res.Diagnostics)
	return res
}

// sortDiags orders by position, then code, for stable output.
func sortDiags(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
}

// Print writes the results' diagnostics to w — one line per finding, or
// one JSON array of all findings when asJSON is set — and returns the
// total number printed. A nonzero return is the tools' exit-1 signal.
func Print(w io.Writer, results []Result, asJSON bool) int {
	all := []Diagnostic{}
	for _, r := range results {
		all = append(all, r.Diagnostics...)
	}
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(all)
		return len(all)
	}
	for _, d := range all {
		fmt.Fprintln(w, d)
	}
	return len(all)
}
