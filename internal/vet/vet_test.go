package vet

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAllCompileErrorsReported: compilation recovers and the driver
// reports every error with its position, not just the first.
func TestAllCompileErrorsReported(t *testing.T) {
	src := `module m
func f() {
  x = 1
  var y = nosuch
}`
	res := Source("m.asl", src)
	if len(res.Diagnostics) < 2 {
		t.Fatalf("diagnostics = %v, want both errors", res.Diagnostics)
	}
	for _, d := range res.Diagnostics {
		if d.Code != CodeCompile {
			t.Errorf("code = %s, want %s", d.Code, CodeCompile)
		}
		if d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic lacks position: %v", d)
		}
		if !strings.HasPrefix(d.String(), "m.asl:") {
			t.Errorf("String() = %q, want file:line:col prefix", d.String())
		}
	}
	if res.Manifest != nil {
		t.Error("manifest computed for failed compile")
	}
	// Positions are sorted.
	for i := 1; i < len(res.Diagnostics); i++ {
		if res.Diagnostics[i].Line < res.Diagnostics[i-1].Line {
			t.Errorf("diagnostics out of order: %v", res.Diagnostics)
		}
	}
}

// TestCleanSourceHasManifest: a clean module vets silently and exposes
// its computed access manifest.
func TestCleanSourceHasManifest(t *testing.T) {
	src := `module m
func main() {
  var h = get_resource("printer")
  report(invoke(h, "enqueue", "doc"))
}`
	res := Source("m.asl", src)
	if len(res.Diagnostics) != 0 {
		t.Fatalf("diagnostics = %v, want none", res.Diagnostics)
	}
	if res.Manifest == nil {
		t.Fatal("no manifest")
	}
	found := false
	for _, r := range res.Manifest.Resources {
		if r == "printer" {
			found = true
		}
	}
	if !found {
		t.Errorf("manifest = %v, want resources=[printer]", res.Manifest)
	}
}

// TestLintFindingsSurface: the ANA lint codes flow through the driver
// with positions and module/function context.
func TestLintFindingsSurface(t *testing.T) {
	src := `module m
func main() {
  var unused = 1
  get_resource("printer")
}`
	res := Source("m.asl", src)
	codes := map[string]bool{}
	for _, d := range res.Diagnostics {
		codes[d.Code] = true
		if d.Module != "m" || d.Func != "main" {
			t.Errorf("context = %s.%s, want m.main", d.Module, d.Func)
		}
	}
	if !codes["ANA002"] || !codes["ANA003"] {
		t.Fatalf("diagnostics = %v, want ANA002 and ANA003", res.Diagnostics)
	}
}

// TestPrintJSON: the JSON form is one array of all findings across
// results, and the count matches the text form.
func TestPrintJSON(t *testing.T) {
	bad := Source("bad.asl", "module m\nfunc f() { x = 1 }")
	clean := Source("ok.asl", "module n\nfunc g() { return 1 }")
	var buf bytes.Buffer
	n := Print(&buf, []Result{bad, clean}, true)
	if n != len(bad.Diagnostics) {
		t.Fatalf("printed %d, want %d", n, len(bad.Diagnostics))
	}
	var arr []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(arr) != n {
		t.Fatalf("JSON has %d entries, want %d", len(arr), n)
	}
	var txt bytes.Buffer
	if got := Print(&txt, []Result{bad, clean}, false); got != n {
		t.Fatalf("text printed %d, want %d", got, n)
	}
}
