package analysis

import (
	"fmt"

	"repro/internal/vm"
)

// Kind is the abstract value kind the interpreter tracks per stack and
// local slot. It refines the verifier's depth-only model: the verifier
// knows *how many* operands are live, this pass knows roughly *what*
// they are.
type Kind uint8

const (
	KAny Kind = iota // unknown / joined
	KInt
	KStr
	KBool
	KNil
	KList
	KMap
	KHandle // resource handle from get_resource
)

var kindNames = [...]string{
	KAny: "any", KInt: "int", KStr: "str", KBool: "bool",
	KNil: "nil", KList: "list", KMap: "map", KHandle: "handle",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AbsValue is one abstract operand: a kind, plus the exact string when
// the value is a compile-time-constant string (the property the
// capability-flow pass resolves resource and method names with).
type AbsValue struct {
	Kind    Kind
	Str     string // valid when IsConst
	IsConst bool
}

func anyVal() AbsValue           { return AbsValue{Kind: KAny} }
func constStr(s string) AbsValue { return AbsValue{Kind: KStr, Str: s, IsConst: true} }

// joinVal is the lattice join: kinds must agree or widen to KAny;
// constant strings must agree or drop to non-constant.
func joinVal(a, b AbsValue) AbsValue {
	out := a
	if a.Kind != b.Kind {
		out.Kind = KAny
	}
	if !a.IsConst || !b.IsConst || a.Str != b.Str {
		out.IsConst = false
		out.Str = ""
	}
	return out
}

// HostCall is one host-call site the abstract interpreter reached (or,
// for sites only reachable through dead-after-migration code, recorded
// with nil Args so the manifest widens them).
type HostCall struct {
	PC   int
	Name string
	// Args holds the abstract argument values (arg 0 first); nil when
	// the site was never visited by the abstract interpreter and its
	// arguments are therefore unknown.
	Args []AbsValue
}

// Arg returns the i'th abstract argument, widening to unknown when the
// site carries no argument facts.
func (h *HostCall) Arg(i int) AbsValue {
	if i < 0 || i >= len(h.Args) {
		return anyVal()
	}
	return h.Args[i]
}

// migrates reports whether the named host call unwinds the current
// execution on success (the agent leaves this server; code after the
// call never runs here). Mirrors the errMigrate host calls in
// internal/server.
func migrates(name string) bool { return name == "go" || name == "colocate" }

// absState is the abstract machine state at one program point.
type absState struct {
	stack  []AbsValue
	locals []AbsValue
}

func (s *absState) clone() *absState {
	c := &absState{
		stack:  append([]AbsValue(nil), s.stack...),
		locals: append([]AbsValue(nil), s.locals...),
	}
	return c
}

// join merges o into s, reporting whether s changed. Stack depths are
// guaranteed equal by the verifier.
func (s *absState) join(o *absState) bool {
	changed := false
	for i := range s.stack {
		j := joinVal(s.stack[i], o.stack[i])
		if j != s.stack[i] {
			s.stack[i] = j
			changed = true
		}
	}
	for i := range s.locals {
		j := joinVal(s.locals[i], o.locals[i])
		if j != s.locals[i] {
			s.locals[i] = j
			changed = true
		}
	}
	return changed
}

// funcAbs is the abstract-interpretation result for one function.
type funcAbs struct {
	// visited marks instructions the abstract execution can reach;
	// differs from CFG reachability exactly on code that only follows a
	// migrating host call (go/colocate).
	visited []bool
	// calls are the visited host-call sites, in pc order.
	calls []HostCall
}

// interpret runs the forward abstract interpretation of f. The module
// must already be verified: stack depths are consistent, operands in
// range. Violations of that invariant surface as errors (never panics).
func interpret(m *vm.Module, f *vm.Func) (*funcAbs, error) {
	n := len(f.Code)
	res := &funcAbs{visited: make([]bool, n)}
	if n == 0 {
		return nil, fmt.Errorf("analysis: %s.%s: empty body", m.Name, f.Name)
	}
	in := make([]*absState, n)
	entry := &absState{locals: make([]AbsValue, f.NLocals)}
	for i := range entry.locals {
		if i < f.NParams {
			entry.locals[i] = anyVal()
		} else {
			entry.locals[i] = AbsValue{Kind: KNil} // zero-filled by the frame
		}
	}
	in[0] = entry
	work := []int{0}
	callAt := make(map[int][]AbsValue)
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		res.visited[pc] = true
		st := in[pc].clone()
		ins := f.Code[pc]
		// A fused head executes its shadow slots too: mark them visited
		// so reachability-based diagnostics see the whole sequence.
		for s := pc + 1; s < pc+ins.Op.Width() && s < n; s++ {
			res.visited[s] = true
		}

		pop := func(k int) ([]AbsValue, error) {
			if len(st.stack) < k {
				return nil, fmt.Errorf("analysis: %s.%s@%d: stack underflow", m.Name, f.Name, pc)
			}
			popped := st.stack[len(st.stack)-k:]
			st.stack = st.stack[:len(st.stack)-k]
			return popped, nil
		}
		push := func(v AbsValue) { st.stack = append(st.stack, v) }

		terminal := false
		switch ins.Op {
		case vm.OpNop:
		case vm.OpPushInt:
			push(AbsValue{Kind: KInt})
		case vm.OpPushStr:
			if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: str index out of range", m.Name, f.Name, pc)
			}
			push(constStr(m.Strs[ins.A]))
		case vm.OpPushTrue, vm.OpPushFalse:
			push(AbsValue{Kind: KBool})
		case vm.OpPushNil:
			push(AbsValue{Kind: KNil})
		case vm.OpLoadLocal:
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			push(st.locals[ins.A])
		case vm.OpStoreLocal:
			v, err := pop(1)
			if err != nil {
				return nil, err
			}
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			st.locals[ins.A] = v[0]
		case vm.OpLoadGlobal:
			// Globals are the agent's mutable migrating state; nothing
			// is known about them statically.
			push(anyVal())
		case vm.OpStoreGlobal:
			if _, err := pop(1); err != nil {
				return nil, err
			}
		case vm.OpAdd:
			ab, err := pop(2)
			if err != nil {
				return nil, err
			}
			a, b := ab[0], ab[1]
			switch {
			case a.IsConst && b.IsConst:
				// String concatenation rides on Add; fold constants so
				// built-up names still resolve in the manifest.
				push(constStr(a.Str + b.Str))
			case a.Kind == KStr && b.Kind == KStr:
				push(AbsValue{Kind: KStr})
			case a.Kind == KInt && b.Kind == KInt:
				push(AbsValue{Kind: KInt})
			default:
				push(anyVal())
			}
		case vm.OpSub, vm.OpMul, vm.OpDiv, vm.OpMod:
			if _, err := pop(2); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KInt})
		case vm.OpNeg:
			if _, err := pop(1); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KInt})
		case vm.OpEq, vm.OpNe, vm.OpLt, vm.OpLe, vm.OpGt, vm.OpGe:
			if _, err := pop(2); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KBool})
		case vm.OpNot:
			if _, err := pop(1); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KBool})
		case vm.OpJump:
		case vm.OpJumpIfFalse, vm.OpJumpIfTrue:
			if _, err := pop(1); err != nil {
				return nil, err
			}
		case vm.OpCall, vm.OpCallNamed:
			if _, err := pop(int(ins.B)); err != nil {
				return nil, err
			}
			push(anyVal())
		case vm.OpHostCall:
			if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: callee index out of range", m.Name, f.Name, pc)
			}
			name := m.Strs[ins.A]
			args, err := pop(int(ins.B))
			if err != nil {
				return nil, err
			}
			// Record (joining with earlier visits of the same site).
			if prev, ok := callAt[pc]; ok {
				joined := make([]AbsValue, len(args))
				for i := range args {
					if i < len(prev) {
						joined[i] = joinVal(prev[i], args[i])
					} else {
						joined[i] = args[i]
					}
				}
				callAt[pc] = joined
			} else {
				callAt[pc] = append([]AbsValue(nil), args...)
			}
			if migrates(name) {
				// Successful go/colocate unwinds the execution; a
				// failed one aborts it. Either way the fall-through
				// never executes on this server.
				terminal = true
			} else if name == "get_resource" {
				push(AbsValue{Kind: KHandle})
			} else {
				push(anyVal())
			}
		case vm.OpReturn, vm.OpHalt:
			if _, err := pop(1); err != nil {
				return nil, err
			}
			terminal = true
		case vm.OpPop:
			if _, err := pop(1); err != nil {
				return nil, err
			}
		case vm.OpDup:
			v, err := pop(1)
			if err != nil {
				return nil, err
			}
			push(v[0])
			push(v[0])
		case vm.OpMakeList:
			if _, err := pop(int(ins.A)); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KList})
		case vm.OpIndex:
			if _, err := pop(2); err != nil {
				return nil, err
			}
			push(anyVal())
		case vm.OpSetIndex:
			if _, err := pop(3); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KNil})
		case vm.OpMakeMap:
			if _, err := pop(2 * int(ins.A)); err != nil {
				return nil, err
			}
			push(AbsValue{Kind: KMap})

		// Fused superinstructions (vm.Prepare). Each one's abstract
		// effect is exactly the composition of its canonical
		// components, so a prepared module reaches the same states at
		// every join point — and therefore the same manifest — as its
		// canonical form.
		case vm.OpLLIAdd:
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			// loadl;pushint;add — int+int when the local is known int,
			// otherwise unknown (the add would trap at runtime).
			if st.locals[ins.A].Kind == KInt {
				push(AbsValue{Kind: KInt})
			} else {
				push(anyVal())
			}
		case vm.OpLLISub:
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			push(AbsValue{Kind: KInt})
		case vm.OpLLILt, vm.OpLLILe:
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			push(AbsValue{Kind: KBool})
		case vm.OpLLLL:
			if int(ins.A) < 0 || int(ins.A) >= len(st.locals) ||
				int(ins.B) < 0 || int(ins.B) >= len(st.locals) {
				return nil, fmt.Errorf("analysis: %s.%s@%d: local out of range", m.Name, f.Name, pc)
			}
			push(st.locals[ins.A])
			push(st.locals[ins.B])
		case vm.OpEqJF, vm.OpNeJF, vm.OpLtJF, vm.OpLeJF, vm.OpGtJF, vm.OpGeJF:
			if _, err := pop(2); err != nil {
				return nil, err
			}
		case vm.OpPushIntRet:
			terminal = true
		default:
			return nil, fmt.Errorf("analysis: %s.%s@%d: unknown opcode %d", m.Name, f.Name, pc, ins.Op)
		}

		if terminal {
			continue
		}
		for _, s := range succPCs(f, pc) {
			if s < 0 || s >= n {
				return nil, fmt.Errorf("analysis: %s.%s@%d: successor %d out of range", m.Name, f.Name, pc, s)
			}
			if in[s] == nil {
				in[s] = st.clone()
				work = append(work, s)
			} else if len(in[s].stack) != len(st.stack) {
				// The verifier guarantees consistent depths; treat a
				// mismatch as a malformed module, not a panic.
				return nil, fmt.Errorf("analysis: %s.%s@%d: inconsistent stack depth at %d", m.Name, f.Name, pc, s)
			} else if in[s].join(st) || !res.visited[s] {
				work = append(work, s)
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		ins := f.Code[pc]
		// The verifier only checks instructions it can reach, so an
		// unreachable host call may carry an out-of-range name index;
		// such a site can never execute and is skipped.
		if ins.Op == vm.OpHostCall && int(ins.A) >= 0 && int(ins.A) < len(m.Strs) {
			res.calls = append(res.calls, HostCall{PC: pc, Name: m.Strs[ins.A], Args: callAt[pc]})
		}
	}
	return res, nil
}
