package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/asl"
	"repro/internal/vm"
	"repro/internal/vm/analysis"
)

func compile(t *testing.T, src string) *vm.Module {
	t.Helper()
	m, err := asl.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return m
}

func analyzeSrc(t *testing.T, src string) *analysis.ModuleAnalysis {
	t.Helper()
	ma, err := analysis.AnalyzeModule(compile(t, src))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return ma
}

// --- CFG construction -------------------------------------------------

func TestCFGStraightLine(t *testing.T) {
	m := &vm.Module{Name: "t", Ints: []int64{1}}
	m.Fns = []vm.Func{{Name: "f", Code: []vm.Instr{
		{Op: vm.OpPushInt, A: 0},
		{Op: vm.OpReturn},
	}}}
	if err := vm.Verify(m); err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildCFG(&m.Fns[0])
	if len(g.Blocks) != 1 {
		t.Fatalf("want 1 block, got %d: %+v", len(g.Blocks), g.Blocks)
	}
	if g.Blocks[0].Start != 0 || g.Blocks[0].End != 2 || len(g.Blocks[0].Succs) != 0 {
		t.Fatalf("bad block: %+v", g.Blocks[0])
	}
	if !g.Reachable[0] {
		t.Fatal("entry block must be reachable")
	}
}

func TestCFGDiamond(t *testing.T) {
	// if-else: cond, jz else, then, jmp end, else, end(ret)
	m := &vm.Module{Name: "t", Ints: []int64{1, 2}}
	m.Fns = []vm.Func{{Name: "f", Code: []vm.Instr{
		{Op: vm.OpPushTrue},          // 0: B0
		{Op: vm.OpJumpIfFalse, A: 4}, // 1
		{Op: vm.OpPushInt, A: 0},     // 2: B1 (then)
		{Op: vm.OpJump, A: 5},        // 3
		{Op: vm.OpPushInt, A: 1},     // 4: B2 (else)
		{Op: vm.OpReturn},            // 5: B3 (join)
	}}}
	if err := vm.Verify(m); err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildCFG(&m.Fns[0])
	if len(g.Blocks) != 4 {
		t.Fatalf("want 4 blocks, got %d: %+v", len(g.Blocks), g.Blocks)
	}
	wantSuccs := [][]int{{2, 1}, {3}, {3}, {}}
	for i, b := range g.Blocks {
		if len(b.Succs) != len(wantSuccs[i]) {
			t.Fatalf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
		}
		for j := range b.Succs {
			if b.Succs[j] != wantSuccs[i][j] {
				t.Fatalf("block %d succs = %v, want %v", i, b.Succs, wantSuccs[i])
			}
		}
		if !g.Reachable[i] {
			t.Fatalf("block %d should be reachable", i)
		}
	}
}

func TestCFGUnreachableBlock(t *testing.T) {
	m := &vm.Module{Name: "t", Ints: []int64{7}}
	m.Fns = []vm.Func{{Name: "f", Code: []vm.Instr{
		{Op: vm.OpPushInt, A: 0}, // 0: B0
		{Op: vm.OpReturn},        // 1
		{Op: vm.OpPushInt, A: 0}, // 2: B1, dead
		{Op: vm.OpReturn},        // 3
	}}}
	if err := vm.Verify(m); err != nil {
		t.Fatal(err)
	}
	g := analysis.BuildCFG(&m.Fns[0])
	if len(g.Blocks) != 2 {
		t.Fatalf("want 2 blocks, got %d", len(g.Blocks))
	}
	if !g.Reachable[0] || g.Reachable[1] {
		t.Fatalf("reachability = %v, want [true false]", g.Reachable)
	}
	if g.ReachablePC(2) {
		t.Fatal("pc 2 must be unreachable")
	}
}

// --- manifest computation --------------------------------------------

func TestManifestTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want analysis.Manifest
	}{
		{
			name: "conditional host call appears",
			src: `module m
func run(n) {
	if n > 0 {
		var r = get_resource("printer")
		invoke(r, "print", "hi")
	}
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource", "invoke"},
				Resources: []string{"printer"},
				Methods:   []string{"print"},
			},
		},
		{
			name: "unreachable host call omitted",
			src: `module m
func run() {
	return 1
	log("dead")
}`,
			want: analysis.Manifest{},
		},
		{
			name: "non-constant argument widens to star",
			src: `module m
func run(name) {
	get_resource(name)
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource"},
				Resources: []string{"*"},
			},
		},
		{
			name: "constant concatenation folds",
			src: `module m
func run() {
	get_resource("print" + "er")
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource"},
				Resources: []string{"printer"},
			},
		},
		{
			name: "go destination and entry recorded",
			src: `module m
func run() {
	go("ajanta:server/east", "step")
}
func step() {
	report(1)
}`,
			want: analysis.Manifest{
				HostCalls:    []string{"go", "report"},
				Destinations: []string{"ajanta:server/east"},
			},
		},
		{
			name: "call after migration still counted (widened)",
			src: `module m
func run() {
	go("ajanta:server/east", "step")
	get_resource("printer")
}
func step() {
	report(1)
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource", "go", "report"},
				// The post-go site is never abstractly executed, so its
				// argument widens rather than resolving to "printer".
				Resources:    []string{"*"},
				Destinations: []string{"ajanta:server/east"},
			},
		},
		{
			name: "colocate names the resource",
			src: `module m
func run() {
	colocate("ajanta:resource/db", "step")
}
func step() {
	log("here")
}`,
			want: analysis.Manifest{
				HostCalls: []string{"colocate", "log"},
				Resources: []string{"ajanta:resource/db"},
			},
		},
		{
			name: "constant through a local resolves",
			src: `module m
func run() {
	var name = "printer"
	var r = get_resource(name)
	invoke(r, "print")
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource", "invoke"},
				Resources: []string{"printer"},
				Methods:   []string{"print"},
			},
		},
		{
			name: "joined locals widen",
			src: `module m
func run(n) {
	var name = "printer"
	if n > 0 {
		name = "scanner"
	}
	get_resource(name)
}`,
			want: analysis.Manifest{
				HostCalls: []string{"get_resource"},
				Resources: []string{"*"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ma := analyzeSrc(t, tc.src)
			got := ma.Manifest
			eq := func(label string, got, want []string) {
				if strings.Join(got, ",") != strings.Join(want, ",") {
					t.Errorf("%s = %v, want %v", label, got, want)
				}
			}
			eq("HostCalls", got.HostCalls, tc.want.HostCalls)
			eq("Resources", got.Resources, tc.want.Resources)
			eq("Methods", got.Methods, tc.want.Methods)
			eq("Destinations", got.Destinations, tc.want.Destinations)
		})
	}
}

func TestManifestCovers(t *testing.T) {
	computed := &analysis.Manifest{
		HostCalls: []string{"get_resource", "invoke"},
		Resources: []string{"printer"},
		Methods:   []string{"print"},
	}
	exact := &analysis.Manifest{
		HostCalls: []string{"get_resource", "invoke"},
		Resources: []string{"printer"},
		Methods:   []string{"print"},
	}
	if !exact.Covers(computed) {
		t.Error("identical manifest must cover itself")
	}
	wild := &analysis.Manifest{
		HostCalls: []string{"*"},
		Resources: []string{"*"},
		Methods:   []string{"*"},
	}
	if !wild.Covers(computed) {
		t.Error("wildcard manifest must cover anything")
	}
	narrow := &analysis.Manifest{
		HostCalls: []string{"get_resource"},
		Resources: []string{"printer"},
		Methods:   []string{"print"},
	}
	if narrow.Covers(computed) {
		t.Error("manifest missing a host call must not cover")
	}
	// A computed "*" is only covered by a declared "*".
	widened := &analysis.Manifest{Resources: []string{"*"}}
	named := &analysis.Manifest{Resources: []string{"printer", "scanner"}}
	if named.Covers(widened) {
		t.Error("named list must not cover a wildcard requirement")
	}
}

// --- lint diagnostics -------------------------------------------------

func codes(ds []analysis.Diagnostic) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Code)
	}
	return out
}

func hasCode(ds []analysis.Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestLintUnreachable(t *testing.T) {
	ma := analyzeSrc(t, `module m
func run() {
	return 1
	log("dead")
}`)
	ds := analysis.Lint(ma)
	if !hasCode(ds, analysis.CodeUnreachable) {
		t.Fatalf("want ANA001, got %v", codes(ds))
	}
	for _, d := range ds {
		if d.Code == analysis.CodeUnreachable && d.Pos.Line != 4 {
			t.Errorf("ANA001 position = %d:%d, want line 4", d.Pos.Line, d.Pos.Col)
		}
	}
}

func TestLintCleanFunctionHasNoUnreachable(t *testing.T) {
	// The implicit nil-return epilogue after an explicit return is
	// compiler residue, not a user-facing diagnostic.
	ds := analysis.Lint(analyzeSrc(t, `module m
func run(n) {
	if n > 0 {
		return 1
	}
	return 2
}`))
	if len(ds) != 0 {
		t.Fatalf("clean function produced diagnostics: %v", ds)
	}
}

func TestLintDeadStore(t *testing.T) {
	ma := analyzeSrc(t, `module m
func run() {
	var unused = 41
	report(1)
}`)
	ds := analysis.Lint(ma)
	if !hasCode(ds, analysis.CodeDeadStore) {
		t.Fatalf("want ANA002, got %v", codes(ds))
	}
	found := false
	for _, d := range ds {
		if d.Code == analysis.CodeDeadStore && strings.Contains(d.Msg, `"unused"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("ANA002 should name the local: %v", ds)
	}
}

func TestLintLoopCounterIsLive(t *testing.T) {
	ds := analysis.Lint(analyzeSrc(t, `module m
func run() {
	var i = 0
	while i < 3 {
		i = i + 1
	}
	report(i)
}`))
	if hasCode(ds, analysis.CodeDeadStore) {
		t.Fatalf("loop counter store wrongly flagged dead: %v", ds)
	}
}

func TestLintIgnoredHandle(t *testing.T) {
	ds := analysis.Lint(analyzeSrc(t, `module m
func run() {
	get_resource("printer")
}`))
	if !hasCode(ds, analysis.CodeIgnoredHandle) {
		t.Fatalf("want ANA003, got %v", codes(ds))
	}
}

func TestLintHandleUsedNotFlagged(t *testing.T) {
	ds := analysis.Lint(analyzeSrc(t, `module m
func run() {
	var r = get_resource("printer")
	invoke(r, "print")
}`))
	if hasCode(ds, analysis.CodeIgnoredHandle) {
		t.Fatalf("used handle wrongly flagged: %v", ds)
	}
}

func TestLintCodeAfterGo(t *testing.T) {
	ma := analyzeSrc(t, `module m
func run() {
	go("ajanta:server/east", "step")
	report("never happens")
}
func step() {
	report(1)
}`)
	ds := analysis.Lint(ma)
	if !hasCode(ds, analysis.CodeAfterMigrate) {
		t.Fatalf("want ANA004, got %v", codes(ds))
	}
}

func TestLintGoAtEndNotFlagged(t *testing.T) {
	ds := analysis.Lint(analyzeSrc(t, `module m
func run() {
	go("ajanta:server/east", "step")
}
func step() {
	report(1)
}`))
	if hasCode(ds, analysis.CodeAfterMigrate) {
		t.Fatalf("trailing go wrongly flagged: %v", ds)
	}
}

func TestLintConditionalGoJoinNotFlagged(t *testing.T) {
	// The join code is reachable through the else path and must not be
	// reported as dead-after-migration.
	ds := analysis.Lint(analyzeSrc(t, `module m
func run(n) {
	if n > 0 {
		go("ajanta:server/east", "step")
	}
	report("stayed")
}
func step() {
	report(1)
}`))
	if hasCode(ds, analysis.CodeAfterMigrate) {
		t.Fatalf("conditionally-reached join wrongly flagged: %v", ds)
	}
}

// --- fail-closed analysis on hostile modules --------------------------

func TestAnalyzeRejectsUnverifiable(t *testing.T) {
	m := &vm.Module{Name: "evil"}
	m.Fns = []vm.Func{{Name: "f", Code: []vm.Instr{
		{Op: vm.OpPop}, // underflow
		{Op: vm.OpReturn},
	}}}
	if _, err := analysis.AnalyzeModule(m); err == nil {
		t.Fatal("analysis must reject an unverifiable module")
	}
	if _, err := analysis.ComputeManifest([]vm.Module{*m}); err == nil {
		t.Fatal("manifest computation must reject an unverifiable bundle")
	}
}

// moduleFromBytes deterministically builds a module from fuzz bytes:
// instructions are decoded in 3-byte groups over small constant pools.
func moduleFromBytes(data []byte) *vm.Module {
	m := &vm.Module{
		Name: "fuzz",
		Ints: []int64{0, 1, 42},
		Strs: []string{"go", "get_resource", "invoke", "log", "printer", "colocate"},
	}
	var code []vm.Instr
	for i := 0; i+2 < len(data); i += 3 {
		code = append(code, vm.Instr{
			Op: vm.Opcode(data[i] % 40),
			A:  int32(int8(data[i+1])),
			B:  int32(data[i+2] % 8),
		})
	}
	if len(code) == 0 {
		code = []vm.Instr{{Op: vm.OpPushNil}, {Op: vm.OpReturn}}
	}
	m.Fns = []vm.Func{{Name: "f", NParams: 1, NLocals: 2, Code: code}}
	return m
}

func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 28, 0, 0})                              // pushnil, ret
	f.Add([]byte{2, 4, 0, 26, 1, 1, 29, 0, 0, 5, 0, 0, 28, 0, 0}) // pushstr, hostcall, pop...
	f.Fuzz(func(t *testing.T, data []byte) {
		m := moduleFromBytes(data)
		verifyErr := vm.Verify(m)
		ma, err := analysis.AnalyzeModule(m)
		if verifyErr == nil && err != nil {
			t.Fatalf("verified module failed analysis: %v", err)
		}
		if verifyErr != nil && err == nil {
			t.Fatal("unverifiable module passed analysis (fail-closed violated)")
		}
		if err == nil {
			analysis.Lint(ma) // must not panic
			if !ma.Manifest.Covers(ma.Manifest) {
				t.Fatal("manifest must cover itself")
			}
		}
	})
}
