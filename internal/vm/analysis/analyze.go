package analysis

import "repro/internal/vm"

// FuncAnalysis bundles the per-function passes.
type FuncAnalysis struct {
	Fn  *vm.Func
	CFG *CFG
	// Visited marks instructions the abstract interpreter reached.
	// Differs from CFG reachability exactly on code that only follows a
	// migrating host call (go/colocate) — such code is CFG-reachable
	// but never executes on this server.
	Visited []bool
	// HostCalls lists every host-call site of the function, in pc
	// order, with abstract argument facts where the interpreter saw
	// them (nil Args at unvisited sites).
	HostCalls []HostCall
}

// ModuleAnalysis is the full analysis of one module.
type ModuleAnalysis struct {
	Module   *vm.Module
	Funcs    []FuncAnalysis
	Manifest *Manifest
}

// AnalyzeModule verifies m and runs every pass over it. Any function of
// the module is a potential entry point (launch entries and go()
// resume entries are chosen at run time), so the manifest is the union
// over all functions' CFG-reachable host calls.
//
// Analysis is fail-closed: an unverifiable module yields an error, and
// the admission path treats an error as a rejection.
func AnalyzeModule(m *vm.Module) (*ModuleAnalysis, error) {
	if err := vm.Verify(m); err != nil {
		return nil, err
	}
	ma := &ModuleAnalysis{Module: m, Manifest: &Manifest{}}
	for fi := range m.Fns {
		f := &m.Fns[fi]
		cfg := BuildCFG(f)
		abs, err := interpret(m, f)
		if err != nil {
			return nil, err
		}
		fa := FuncAnalysis{Fn: f, CFG: cfg, Visited: abs.visited, HostCalls: abs.calls}
		for i := range fa.HostCalls {
			c := &fa.HostCalls[i]
			if cfg.ReachablePC(c.PC) {
				// Unvisited-but-reachable sites (dead-after-migration
				// code) carry nil Args and widen to "*" — included,
				// never silently dropped.
				ma.Manifest.addCall(c)
			}
		}
		ma.Funcs = append(ma.Funcs, fa)
	}
	return ma, nil
}

// AnalyzeBundle analyzes every module of an agent's code bundle and
// unions their manifests.
func AnalyzeBundle(mods []vm.Module) ([]*ModuleAnalysis, *Manifest, error) {
	if err := vm.VerifyBundle(mods); err != nil {
		return nil, nil, err
	}
	union := &Manifest{}
	out := make([]*ModuleAnalysis, 0, len(mods))
	for i := range mods {
		ma, err := AnalyzeModule(&mods[i])
		if err != nil {
			return nil, nil, err
		}
		out = append(out, ma)
		for _, s := range ma.Manifest.HostCalls {
			union.HostCalls = insert(union.HostCalls, s)
		}
		for _, s := range ma.Manifest.Resources {
			union.Resources = insert(union.Resources, s)
		}
		for _, s := range ma.Manifest.Methods {
			union.Methods = insert(union.Methods, s)
		}
		for _, s := range ma.Manifest.Destinations {
			union.Destinations = insert(union.Destinations, s)
		}
	}
	return out, union, nil
}

// ComputeManifest is the convenience entry the server admission path
// and agent builder use: verify + analyze + union.
func ComputeManifest(mods []vm.Module) (*Manifest, error) {
	_, man, err := AnalyzeBundle(mods)
	return man, err
}
