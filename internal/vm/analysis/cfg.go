// Package analysis is the multi-pass static analyzer over compiled VM
// modules. It layers three passes on the bytecode the seed verifier
// (vm.Verify) already checks instruction-by-instruction:
//
//  1. control-flow graphs — basic blocks, successor edges, reachability
//     (cfg.go);
//  2. a forward abstract interpretation over the operand stack tracking
//     value *kinds* and constant strings, strengthening the verifier's
//     depth-only stack model (absint.go);
//  3. a capability-flow pass deriving each module's access manifest —
//     every host call, resource name, invoked method and migration
//     destination the code can possibly reach (manifest.go).
//
// The same facts feed the lint diagnostics (lint.go) surfaced by
// `aslc -vet` and `ajanta-vet`, and the admission check in
// internal/server that rejects an over-privileged agent before any VM
// instruction executes.
package analysis

import "repro/internal/vm"

// Block is one basic block: the half-open instruction range
// [Start, End) with no internal control transfers.
type Block struct {
	Start, End int
	// Succs are the indices (into CFG.Blocks) of successor blocks.
	// Empty for blocks ending in return/halt (and for go/colocate-style
	// terminators, which the absint pass handles — the CFG itself keeps
	// the fall-through edge).
	Succs []int
}

// CFG is the control-flow graph of one function.
type CFG struct {
	Fn *vm.Func
	// Blocks in ascending Start order; Blocks[0] starts at pc 0.
	Blocks []Block
	// BlockOf maps each pc to the index of its containing block.
	BlockOf []int
	// Reachable marks blocks reachable from the entry block.
	Reachable []bool
}

// succPCs returns the successor instruction indices of pc, mirroring
// the verifier's successor relation: execution advances by the opcode's
// width, so the shadow slots behind a fused superinstruction are
// skipped. Out-of-range targets cannot occur on verified code; callers
// must verify first.
func succPCs(f *vm.Func, pc int) []int {
	ins := f.Code[pc]
	switch ins.Op {
	case vm.OpReturn, vm.OpHalt, vm.OpPushIntRet:
		return nil
	case vm.OpJump:
		return []int{int(ins.A)}
	case vm.OpJumpIfFalse, vm.OpJumpIfTrue,
		vm.OpEqJF, vm.OpNeJF, vm.OpLtJF, vm.OpLeJF, vm.OpGtJF, vm.OpGeJF:
		return []int{int(ins.A), pc + ins.Op.Width()}
	default:
		return []int{pc + ins.Op.Width()}
	}
}

// BuildCFG partitions a verified function into basic blocks and
// computes reachability from the entry. The function must have passed
// vm.Verify (jump targets in range, no fall-off). Prepared (fused)
// functions are handled by decoding in width order: a fused head and
// its shadow slots belong to one block and only heads contribute edges
// (fusion guarantees shadows are never jump targets, so leaders always
// land on heads).
func BuildCFG(f *vm.Func) *CFG {
	n := len(f.Code)
	// head marks the instruction-stream decode positions; shadow slots
	// behind a fused head are data.
	head := make([]bool, n)
	for pc := 0; pc < n; pc += f.Code[pc].Op.Width() {
		head[pc] = true
	}
	// Leaders: entry, every jump target, every head after a control
	// transfer.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc := 0; pc < n; pc += f.Code[pc].Op.Width() {
		w := f.Code[pc].Op.Width()
		switch f.Code[pc].Op {
		case vm.OpJump, vm.OpJumpIfFalse, vm.OpJumpIfTrue,
			vm.OpEqJF, vm.OpNeJF, vm.OpLtJF, vm.OpLeJF, vm.OpGtJF, vm.OpGeJF:
			t := int(f.Code[pc].A)
			if t >= 0 && t < n {
				leader[t] = true
			}
			if pc+w < n {
				leader[pc+w] = true
			}
		case vm.OpReturn, vm.OpHalt, vm.OpPushIntRet:
			if pc+w < n {
				leader[pc+w] = true
			}
		}
	}
	g := &CFG{Fn: f, BlockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: pc})
		}
		g.BlockOf[pc] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
		// The block's terminator is its last *head*; End-1 may be a
		// shadow slot of a fused instruction.
		last := g.Blocks[i].End - 1
		for last > g.Blocks[i].Start && !head[last] {
			last--
		}
		for _, s := range succPCs(f, last) {
			if s >= 0 && s < n {
				g.Blocks[i].Succs = append(g.Blocks[i].Succs, g.BlockOf[s])
			}
		}
	}
	// Reachability: DFS from the entry block.
	g.Reachable = make([]bool, len(g.Blocks))
	if len(g.Blocks) > 0 {
		stack := []int{0}
		g.Reachable[0] = true
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range g.Blocks[b].Succs {
				if !g.Reachable[s] {
					g.Reachable[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	return g
}

// ReachablePC reports whether the instruction at pc is in a reachable
// block.
func (g *CFG) ReachablePC(pc int) bool {
	if pc < 0 || pc >= len(g.BlockOf) {
		return false
	}
	return g.Reachable[g.BlockOf[pc]]
}
