package analysis

import (
	"fmt"

	"repro/internal/vm"
)

// Diagnostic codes, stable across releases: tools and suppressions key
// on these, never on message text.
const (
	CodeUnreachable   = "ANA001" // unreachable code
	CodeDeadStore     = "ANA002" // dead store to a local
	CodeIgnoredHandle = "ANA003" // get_resource result ignored
	CodeAfterMigrate  = "ANA004" // code after go/colocate never executes
)

// Codes maps each diagnostic code to its one-line description (used by
// docs and the vet tools' help output).
var Codes = map[string]string{
	CodeUnreachable:   "unreachable code (no control path from the function entry)",
	CodeDeadStore:     "value stored to a local is never read",
	CodeIgnoredHandle: "get_resource result discarded; the binding is unusable",
	CodeAfterMigrate:  "code after go()/colocate() never executes on this server",
}

// Diagnostic is one lint finding, positioned in the original ASL source
// when the module carries a position table.
type Diagnostic struct {
	Code   string
	Module string
	Func   string
	PC     int
	Pos    vm.Pos // zero when the module has no position table
	Msg    string
}

func (d Diagnostic) String() string {
	loc := fmt.Sprintf("%s.%s@%d", d.Module, d.Func, d.PC)
	if d.Pos.Line > 0 {
		loc = fmt.Sprintf("%d:%d: %s", d.Pos.Line, d.Pos.Col, loc)
	}
	return fmt.Sprintf("%s: %s: %s", loc, d.Code, d.Msg)
}

// synthetic ops are stack plumbing the compiler emits around real code
// (implicit epilogues, statement-value pops, loop back-edges). A dead
// region consisting solely of these is compiler residue, not user code,
// and is not worth a diagnostic.
func syntheticOnly(code []vm.Instr, start, end int) bool {
	for pc := start; pc < end; pc++ {
		switch code[pc].Op {
		case vm.OpPop, vm.OpPushNil, vm.OpReturn, vm.OpJump:
		default:
			return false
		}
	}
	return true
}

// Lint derives the diagnostic suite from a module's analysis.
func Lint(ma *ModuleAnalysis) []Diagnostic {
	var out []Diagnostic
	for i := range ma.Funcs {
		fa := &ma.Funcs[i]
		out = append(out, lintFunc(ma.Module, fa)...)
	}
	return out
}

func lintFunc(m *vm.Module, fa *FuncAnalysis) []Diagnostic {
	f := fa.Fn
	var out []Diagnostic
	diag := func(pc int, code, format string, args ...any) {
		out = append(out, Diagnostic{
			Code: code, Module: m.Name, Func: f.Name, PC: pc,
			Pos: f.PosAt(pc), Msg: fmt.Sprintf(format, args...),
		})
	}

	// ANA001: CFG-unreachable regions. One diagnostic per contiguous
	// region, anchored at its first instruction.
	// ANA004: CFG-reachable regions the abstract interpreter never
	// enters — exactly the code that only follows a migrating call.
	n := len(f.Code)
	for pc := 0; pc < n; {
		if !fa.CFG.ReachablePC(pc) {
			end := pc
			for end < n && !fa.CFG.ReachablePC(end) {
				end++
			}
			if !syntheticOnly(f.Code, pc, end) {
				diag(pc, CodeUnreachable, "unreachable code (%d instructions)", end-pc)
			}
			pc = end
			continue
		}
		if !fa.Visited[pc] {
			end := pc
			for end < n && fa.CFG.ReachablePC(end) && !fa.Visited[end] {
				end++
			}
			if !syntheticOnly(f.Code, pc, end) {
				diag(pc, CodeAfterMigrate,
					"code after go()/colocate() never executes on this server (migration unwinds the visit)")
			}
			pc = end
			continue
		}
		pc++
	}

	// ANA002: dead stores, via backward liveness over the CFG.
	liveStores := liveness(f, fa.CFG)
	for pc := 0; pc < n; pc++ {
		if f.Code[pc].Op != vm.OpStoreLocal || !fa.Visited[pc] {
			continue
		}
		if !liveStores[pc] {
			slot := int(f.Code[pc].A)
			diag(pc, CodeDeadStore, "value stored to %q is never read", f.LocalName(slot))
		}
	}

	// ANA003: a get_resource whose handle is immediately discarded.
	for i := range fa.HostCalls {
		c := &fa.HostCalls[i]
		if c.Name != "get_resource" || !fa.Visited[c.PC] {
			continue
		}
		if c.PC+1 < n && f.Code[c.PC+1].Op == vm.OpPop {
			diag(c.PC, CodeIgnoredHandle,
				"get_resource result ignored; the proxy binding is dropped immediately")
		}
	}
	return out
}

// liveness computes, per OpStoreLocal instruction, whether the stored
// slot may be read before being overwritten (true = live = not a dead
// store). Standard backward may-dataflow at basic-block granularity.
func liveness(f *vm.Func, g *CFG) map[int]bool {
	nb := len(g.Blocks)
	use := make([][]bool, nb) // slot read before any write in block
	def := make([][]bool, nb) // slot written in block
	liveIn := make([][]bool, nb)
	liveOut := make([][]bool, nb)
	nl := f.NLocals
	for b := 0; b < nb; b++ {
		use[b] = make([]bool, nl)
		def[b] = make([]bool, nl)
		liveIn[b] = make([]bool, nl)
		liveOut[b] = make([]bool, nl)
		for pc := g.Blocks[b].Start; pc < g.Blocks[b].End; pc++ {
			ins := f.Code[pc]
			slot := int(ins.A)
			if slot < 0 || slot >= nl {
				continue
			}
			switch ins.Op {
			case vm.OpLoadLocal:
				if !def[b][slot] {
					use[b][slot] = true
				}
			case vm.OpStoreLocal:
				def[b][slot] = true
			// Fused superinstructions read locals through their A (and
			// for ll_ll, B) operand; the loadl they swallowed is the
			// replaced head slot, so it must be accounted for here.
			case vm.OpLLIAdd, vm.OpLLISub, vm.OpLLILt, vm.OpLLILe:
				if !def[b][slot] {
					use[b][slot] = true
				}
			case vm.OpLLLL:
				if !def[b][slot] {
					use[b][slot] = true
				}
				if sb := int(ins.B); sb >= 0 && sb < nl && !def[b][sb] {
					use[b][sb] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for b := nb - 1; b >= 0; b-- {
			for _, s := range g.Blocks[b].Succs {
				for sl := 0; sl < nl; sl++ {
					if liveIn[s][sl] && !liveOut[b][sl] {
						liveOut[b][sl] = true
						changed = true
					}
				}
			}
			for sl := 0; sl < nl; sl++ {
				in := use[b][sl] || (liveOut[b][sl] && !def[b][sl])
				if in && !liveIn[b][sl] {
					liveIn[b][sl] = true
					changed = true
				}
			}
		}
	}
	// Per-store verdict: walk each block backward tracking the live set.
	out := make(map[int]bool)
	for b := 0; b < nb; b++ {
		live := append([]bool(nil), liveOut[b]...)
		for pc := g.Blocks[b].End - 1; pc >= g.Blocks[b].Start; pc-- {
			ins := f.Code[pc]
			slot := int(ins.A)
			if slot < 0 || slot >= nl {
				continue
			}
			switch ins.Op {
			case vm.OpStoreLocal:
				out[pc] = live[slot]
				live[slot] = false
			case vm.OpLoadLocal:
				live[slot] = true
			case vm.OpLLIAdd, vm.OpLLISub, vm.OpLLILt, vm.OpLLILe:
				live[slot] = true
			case vm.OpLLLL:
				live[slot] = true
				if sb := int(ins.B); sb >= 0 && sb < nl {
					live[sb] = true
				}
			}
		}
	}
	return out
}
