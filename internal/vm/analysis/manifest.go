package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Wildcard marks a manifest entry whose exact value could not be
// resolved statically: an unanalyzable call site widens to "*" rather
// than being omitted, so the manifest always over-approximates what the
// agent can do (soundness; the admission check stays fail-closed).
const Wildcard = "*"

// Manifest is a module bundle's access manifest: everything the code
// can possibly ask the host for. It is computed over CFG-reachable
// code only — a host call in an unreachable block cannot execute and
// does not appear.
type Manifest struct {
	// HostCalls lists every reachable host-call name (go, get_resource,
	// invoke, log, ...).
	HostCalls []string
	// Resources lists resource names passed to get_resource/colocate;
	// "*" when an argument is not a compile-time constant.
	Resources []string
	// Methods lists method names passed to invoke; "*" when unknown.
	Methods []string
	// Destinations lists go() target server names; "*" when unknown.
	Destinations []string
}

// set-style insertion keeping slices sorted and deduplicated.
func insert(list []string, s string) []string {
	i := sort.SearchStrings(list, s)
	if i < len(list) && list[i] == s {
		return list
	}
	list = append(list, "")
	copy(list[i+1:], list[i:])
	list[i] = s
	return list
}

func contains(list []string, s string) bool {
	i := sort.SearchStrings(list, s)
	return i < len(list) && list[i] == s
}

// covers reports whether the declared list admits every entry of the
// computed list. A declared "*" admits anything; a computed "*" is only
// admitted by a declared "*".
func covers(declared, computed []string) bool {
	if contains(declared, Wildcard) {
		return true
	}
	for _, c := range computed {
		if !contains(declared, c) {
			return false
		}
	}
	return true
}

// Covers reports whether m (a declared/carried manifest) is at least as
// broad as other (a freshly computed one) in every dimension. Admission
// uses this to re-verify a carried manifest: carried must cover
// computed, or the agent is lying about its needs.
func (m *Manifest) Covers(other *Manifest) bool {
	return covers(m.HostCalls, other.HostCalls) &&
		covers(m.Resources, other.Resources) &&
		covers(m.Methods, other.Methods) &&
		covers(m.Destinations, other.Destinations)
}

// Empty reports a manifest with no entries at all (an agent that never
// talks to the host).
func (m *Manifest) Empty() bool {
	return len(m.HostCalls) == 0 && len(m.Resources) == 0 &&
		len(m.Methods) == 0 && len(m.Destinations) == 0
}

func (m *Manifest) String() string {
	part := func(label string, list []string) string {
		if len(list) == 0 {
			return ""
		}
		return fmt.Sprintf(" %s=[%s]", label, strings.Join(list, " "))
	}
	return strings.TrimSpace("manifest" +
		part("hostcalls", m.HostCalls) +
		part("resources", m.Resources) +
		part("methods", m.Methods) +
		part("destinations", m.Destinations))
}

// argEntry resolves a host-call argument to a manifest entry: the
// constant string when known, the wildcard otherwise.
func argEntry(v AbsValue) string {
	if v.IsConst {
		return v.Str
	}
	return Wildcard
}

// addCall folds one reachable host-call site into the manifest.
func (m *Manifest) addCall(c *HostCall) {
	m.HostCalls = insert(m.HostCalls, c.Name)
	switch c.Name {
	case "get_resource":
		m.Resources = insert(m.Resources, argEntry(c.Arg(0)))
	case "colocate":
		// colocate names a resource to migrate to; accessing it still
		// takes a get_resource, but the name is a capability signal.
		m.Resources = insert(m.Resources, argEntry(c.Arg(0)))
	case "invoke":
		m.Methods = insert(m.Methods, argEntry(c.Arg(1)))
	case "go":
		m.Destinations = insert(m.Destinations, argEntry(c.Arg(0)))
	}
}
