package vm

import (
	"fmt"
	"sort"
	"strings"
)

// InstallBuiltins adds the pure builtins every environment gets: len,
// append, str, contains, keys. They have no side effects and therefore
// need no security mediation.
func InstallBuiltins(env *Env) {
	env.Host["len"] = func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Nil(), fmt.Errorf("%w: len wants 1 arg", ErrTrap)
		}
		switch a := args[0]; a.Kind {
		case KindStr:
			return I(int64(len(a.Str))), nil
		case KindList:
			return I(int64(len(a.List))), nil
		case KindMap:
			return I(int64(len(a.Map))), nil
		default:
			return Nil(), fmt.Errorf("%w: len of %s", ErrTrap, a.Kind)
		}
	}
	env.Host["append"] = func(args []Value) (Value, error) {
		if len(args) < 1 || args[0].Kind != KindList {
			return Nil(), fmt.Errorf("%w: append wants (list, items...)", ErrTrap)
		}
		out := make([]Value, 0, len(args[0].List)+len(args)-1)
		out = append(out, args[0].List...)
		out = append(out, args[1:]...)
		return L(out...), nil
	}
	env.Host["str"] = func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Nil(), fmt.Errorf("%w: str wants 1 arg", ErrTrap)
		}
		return S(args[0].Text()), nil
	}
	env.Host["contains"] = func(args []Value) (Value, error) {
		if len(args) != 2 {
			return Nil(), fmt.Errorf("%w: contains wants 2 args", ErrTrap)
		}
		switch a := args[0]; a.Kind {
		case KindList:
			for _, e := range a.List {
				if e.Equal(args[1]) {
					return B(true), nil
				}
			}
			return B(false), nil
		case KindMap:
			if args[1].Kind != KindStr {
				return Nil(), fmt.Errorf("%w: contains on map wants str key", ErrTrap)
			}
			_, ok := a.Map[args[1].Str]
			return B(ok), nil
		default:
			return Nil(), fmt.Errorf("%w: contains on %s", ErrTrap, a.Kind)
		}
	}
	env.Host["split"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindStr || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: split wants (str, sep)", ErrTrap)
		}
		if args[1].Str == "" {
			return Nil(), fmt.Errorf("%w: split with empty separator", ErrTrap)
		}
		parts := strings.Split(args[0].Str, args[1].Str)
		out := make([]Value, len(parts))
		for i, p := range parts {
			out[i] = S(p)
		}
		return L(out...), nil
	}
	env.Host["join"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindList || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: join wants (list, sep)", ErrTrap)
		}
		parts := make([]string, len(args[0].List))
		for i, e := range args[0].List {
			parts[i] = e.Text()
		}
		return S(strings.Join(parts, args[1].Str)), nil
	}
	env.Host["substr"] = func(args []Value) (Value, error) {
		if len(args) != 3 || args[0].Kind != KindStr ||
			args[1].Kind != KindInt || args[2].Kind != KindInt {
			return Nil(), fmt.Errorf("%w: substr wants (str, start, end)", ErrTrap)
		}
		s, lo, hi := args[0].Str, args[1].Int, args[2].Int
		if lo < 0 || hi < lo || hi > int64(len(s)) {
			return Nil(), fmt.Errorf("%w: substr bounds [%d:%d] on len %d", ErrTrap, lo, hi, len(s))
		}
		return S(s[lo:hi]), nil
	}
	env.Host["find"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindStr || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: find wants (str, substr)", ErrTrap)
		}
		return I(int64(strings.Index(args[0].Str, args[1].Str))), nil
	}
	env.Host["keys"] = func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != KindMap {
			return Nil(), fmt.Errorf("%w: keys wants a map", ErrTrap)
		}
		ks := make([]string, 0, len(args[0].Map))
		for k := range args[0].Map {
			ks = append(ks, k)
		}
		// Deterministic order keeps agent programs reproducible.
		sort.Strings(ks)
		out := make([]Value, len(ks))
		for i, k := range ks {
			out[i] = S(k)
		}
		return L(out...), nil
	}
}
