package vm

import (
	"errors"
	"testing"
)

func TestMeterAbort(t *testing.T) {
	m := NewMeter(0)
	if err := m.Charge(5); err != nil {
		t.Fatal(err)
	}
	m.Abort()
	if err := m.Charge(1); !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v", err)
	}
	if m.Used() != 5 {
		t.Fatalf("used = %d", m.Used())
	}
	if m.Limit() != 0 {
		t.Fatalf("limit = %d", m.Limit())
	}
	// Nil meters are inert everywhere.
	var nilM *Meter
	if err := nilM.Charge(10); err != nil {
		t.Fatal(err)
	}
	nilM.Abort()
	if nilM.Used() != 0 || nilM.Limit() != 0 {
		t.Fatal("nil meter reported usage")
	}
	bounded := NewMeter(100)
	if bounded.Limit() != 100 {
		t.Fatalf("limit = %d", bounded.Limit())
	}
}

func TestAbortStopsRunningProgram(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.i(OpJump, 0) // infinite loop
	env := NewEnv()
	env.Meter = NewMeter(0)
	done := make(chan error, 1)
	go func() {
		_, err := Run(env, b.m, "main")
		done <- err
	}()
	env.Meter.Abort()
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("got %v", err)
	}
}

func TestModuleResolver(t *testing.T) {
	m := newMB("lib").fn("f", 0, 0).i(OpPushNil).ret().m
	r := ModuleResolver{M: m}
	if _, f, err := r.ResolveFunc("f"); err != nil || f.Name != "f" {
		t.Fatalf("%v %v", f, err)
	}
	if _, _, err := r.ResolveFunc("ghost"); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("got %v", err)
	}
}

func TestValueConstructorsAndString(t *testing.T) {
	if H(7).String() != "handle#7" || H(7).Kind != KindHandle {
		t.Fatal("handle value wrong")
	}
	if M(nil).Map == nil {
		t.Fatal("M(nil) returned nil map")
	}
	if Nil().String() != "nil" || B(false).String() != "false" || I(-3).String() != "-3" {
		t.Fatal("scalar Strings wrong")
	}
	if S("a\"b").String() != `"a\"b"` {
		t.Fatalf("string quoting: %s", S("a\"b").String())
	}
	if got := (Value{Kind: Kind(99)}).String(); got != "<kind(99)>" {
		t.Fatalf("unknown kind String = %q", got)
	}
	if Kind(99).String() != "kind(99)" || KindHandle.String() != "handle" {
		t.Fatal("Kind.String wrong")
	}
}

func TestTruthyTable(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Nil(), false}, {B(false), false}, {B(true), true},
		{I(0), true}, {S(""), true}, {L(), true}, {M(nil), true}, {H(0), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%s) = %v", c.v, !c.want)
		}
	}
}

func TestEqualCrossKindsAndHandles(t *testing.T) {
	if I(1).Equal(S("1")) || Nil().Equal(B(false)) {
		t.Fatal("cross-kind equality")
	}
	if !H(3).Equal(H(3)) || H(3).Equal(H(4)) {
		t.Fatal("handle equality wrong")
	}
	if L(I(1)).Equal(L(I(1), I(2))) {
		t.Fatal("length-mismatched lists equal")
	}
	if M(map[string]Value{"a": I(1)}).Equal(M(map[string]Value{"b": I(1)})) {
		t.Fatal("different-keyed maps equal")
	}
}

func TestSetIndexTraps(t *testing.T) {
	// set-index on a string.
	b := newMB("t").fn("main", 0, 0)
	b.pushS("abc").pushI(0).pushS("x").i(OpSetIndex).ret()
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(NewEnv(), b.m, "main"); !errors.Is(err, ErrTrap) {
		t.Fatalf("got %v", err)
	}
	// list set-index with a string index.
	b2 := newMB("t").fn("main", 0, 0)
	b2.pushI(1).i(OpMakeList, 1).pushS("k").pushI(9).i(OpSetIndex).ret()
	if _, err := Run(NewEnv(), b2.m, "main"); !errors.Is(err, ErrTrap) {
		t.Fatalf("got %v", err)
	}
	// list set-index out of range.
	b3 := newMB("t").fn("main", 0, 0)
	b3.pushI(1).i(OpMakeList, 1).pushI(5).pushI(9).i(OpSetIndex).ret()
	if _, err := Run(NewEnv(), b3.m, "main"); !errors.Is(err, ErrTrap) {
		t.Fatalf("got %v", err)
	}
	// map set-index with an int key.
	b4 := newMB("t").fn("main", 0, 0)
	b4.i(OpMakeMap, 0).pushI(1).pushI(2).i(OpSetIndex).ret()
	if _, err := Run(NewEnv(), b4.m, "main"); !errors.Is(err, ErrTrap) {
		t.Fatalf("got %v", err)
	}
}

func TestIndexMapMissingKeyIsNil(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.i(OpMakeMap, 0).pushS("ghost").i(OpIndex).ret()
	v := mustRun(t, b.m, "main")
	if v.Kind != KindNil {
		t.Fatalf("got %v", v)
	}
}

func TestCompareAllOps(t *testing.T) {
	ops := []struct {
		op   Opcode
		a, b int64
		want bool
	}{
		{OpLt, 1, 2, true}, {OpLe, 2, 2, true}, {OpGt, 3, 2, true},
		{OpGe, 2, 3, false}, {OpLt, 2, 1, false}, {OpGe, 2, 2, true},
	}
	for _, c := range ops {
		b := newMB("t").fn("main", 0, 0)
		b.pushI(c.a).pushI(c.b).i(c.op).ret()
		if v := mustRun(t, b.m, "main"); !v.Equal(B(c.want)) {
			t.Errorf("%d %s %d = %v", c.a, c.op, c.b, v)
		}
	}
	// String comparison for the remaining operators.
	b := newMB("t").fn("main", 0, 0)
	b.pushS("b").pushS("a").i(OpGe).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(B(true)) {
		t.Fatalf("got %v", v)
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"add":          {Op: OpAdd},
		"jmp 7":        {Op: OpJump, A: 7},
		"call 1 2":     {Op: OpCall, A: 1, B: 2},
		"hostcall 0 3": {Op: OpHostCall, A: 0, B: 3},
		"pushint 4":    {Op: OpPushInt, A: 4},
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", ins.Op, got, want)
		}
	}
	if Opcode(250).String() != "op(250)" {
		t.Fatal("unknown opcode String wrong")
	}
}

func TestJumpIfTrue(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.i(OpPushTrue)
	jt := len(b.f.Code)
	b.i(OpJumpIfTrue, 0)
	b.pushI(1).ret()
	b.f.Code[jt].A = int32(len(b.f.Code))
	b.pushI(2).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(I(2)) {
		t.Fatalf("got %v", v)
	}
}

func TestNopAndDupPop(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.i(OpNop).pushI(5).i(OpDup).i(OpPop).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(I(5)) {
		t.Fatalf("got %v", v)
	}
}

func TestHaltOpcode(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.pushI(9).i(OpHalt)
	if v := mustRun(t, b.m, "main"); !v.Equal(I(9)) {
		t.Fatalf("got %v", v)
	}
}
