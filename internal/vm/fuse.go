package vm

// This file implements Prepare: the load-time lowering of a verified
// canonical module into the execution form the fast interpreter runs.
// Preparation does three things, all local to this process:
//
//  1. copies the module's functions (sharing the immutable pools and
//     debug tables) so the canonical bundle the agent carries — and
//     re-serializes on departure — is never mutated;
//  2. runs a peephole pass fusing hot straight-line pairs/triples into
//     superinstructions (see the fused opcode block in isa.go). Fusion
//     is PC-preserving: the fused opcode overwrites the first slot of
//     the sequence and the interior slots keep their original
//     instructions as unreachable "shadows", so jump targets, Pos
//     tables, and the manifest's host-call PCs are all unchanged. A
//     sequence is fused only when no interior slot is a jump target;
//  3. attaches the funcRT runtime table: per-site inline-cache slots
//     and the exact verified operand-stack bound, which lets the
//     interpreter pre-size its arena and skip per-push checks.
//
// Prepared modules are process-local execution state, never protocol
// state: agent.Encode/Decode reject fused bytecode, and the fusedwire
// analyzer keeps Prepare calls inside the loader.

// funcRT is the runtime table Prepare attaches to each function copy.
type funcRT struct {
	// maxStack is the function's exact maximum operand-stack depth as
	// computed by the verifier dataflow over the fused code; the
	// interpreter reserves NLocals+maxStack arena slots at frame entry
	// and then pushes unchecked.
	maxStack int
	// sites holds one inline-cache slot per instruction, indexed by pc.
	// nil when the function contains no cacheable site (named calls,
	// host calls, global loads/stores).
	sites []siteCache
}

// siteCache is one monomorphic inline cache. Which fields are
// meaningful depends on the opcode at the site; validity is gated on
// the owner fields (res/env) so caches shared between environments or
// invalidated by a loader-epoch bump simply miss and re-resolve.
type siteCache struct {
	// OpCallNamed: resolution of Strs[A] through res at epoch.
	res   Resolver
	epoch uint64
	mod   *Module
	fn    *Func

	// OpHostCall / OpLoadGlobal / OpStoreGlobal: owner environment.
	env *Env
	// OpHostCall: the resolved host function.
	host HostFunc
	// OpLoadGlobal / OpStoreGlobal: dense global slot index.
	slot int32
}

// Prepare returns the execution copy of a verified canonical module:
// fused code plus runtime tables. The input module is not modified and
// may continue to be shared, serialized, and digested; the returned
// module must never cross the wire. Preparing an already-prepared
// module is valid and yields an equivalent copy (the peephole skips
// fused heads and never re-fuses their shadows).
func Prepare(m *Module) *Module {
	cp := &Module{Name: m.Name, Ints: m.Ints, Strs: m.Strs, Fns: make([]Func, len(m.Fns))}
	for i := range m.Fns {
		f := &m.Fns[i]
		nf := *f // shares Pos, LocalNames
		nf.Code = fuse(f.Code)
		nf.rt = buildRT(cp, &nf)
		cp.Fns[i] = nf
	}
	return cp
}

// HasFused reports whether any instruction of the module is a fused
// superinstruction — i.e. whether the module is a prepared execution
// copy rather than canonical wire bytecode.
func HasFused(m *Module) bool {
	for i := range m.Fns {
		for _, ins := range m.Fns[i].Code {
			if ins.Op.Fused() {
				return true
			}
		}
	}
	return false
}

// BundleHasFused reports whether any module of a bundle carries fused
// bytecode. Transfer choke points use it to guarantee wire-format
// modules stay canonical.
func BundleHasFused(mods []Module) bool {
	for i := range mods {
		if HasFused(&mods[i]) {
			return true
		}
	}
	return false
}

// fuse runs the peephole pass over one function body and returns the
// fused copy. Input must be verified canonical-or-prepared code; the
// pass is idempotent.
func fuse(code []Instr) []Instr {
	n := len(code)
	out := make([]Instr, n)
	copy(out, code)

	// An instruction that is a jump target must stay addressable as
	// itself: it can never be buried as the interior of a fused
	// sequence. Fused heads are fine as targets (their pc is unchanged).
	target := make([]bool, n+1)
	for pc := 0; pc < n; pc += int(code[pc].Op.Width()) {
		switch code[pc].Op {
		case OpJump, OpJumpIfFalse, OpJumpIfTrue, OpEqJF, OpNeJF, OpLtJF, OpLeJF, OpGtJF, OpGeJF:
			t := int(code[pc].A)
			if t >= 0 && t < n {
				target[t] = true
			}
		}
	}

	free := func(pc int) bool { return pc < n && !target[pc] }

	for pc := 0; pc < n; {
		w := int(out[pc].Op.Width())
		if w > 1 {
			pc += w // already fused; never re-fuse shadows
			continue
		}
		ins := out[pc]
		switch ins.Op {
		case OpLoadLocal:
			// loadl A; pushint B; {add,sub,lt,le}  →  lli_* A B
			if free(pc+1) && free(pc+2) && out[pc+1].Op == OpPushInt {
				var fusedOp Opcode
				switch out[pc+2].Op {
				case OpAdd:
					fusedOp = OpLLIAdd
				case OpSub:
					fusedOp = OpLLISub
				case OpLt:
					fusedOp = OpLLILt
				case OpLe:
					fusedOp = OpLLILe
				}
				if fusedOp != OpNop {
					out[pc] = Instr{Op: fusedOp, A: ins.A, B: out[pc+1].A}
					pc += 3
					continue
				}
			}
			// loadl A; loadl B  →  ll_ll A B — but only when a triple
			// would not start at pc+1 (loadl;loadl;pushint;add fuses
			// better as loadl + lli_add).
			if free(pc+1) && out[pc+1].Op == OpLoadLocal {
				tripleNext := free(pc+2) && free(pc+3) && out[pc+2].Op == OpPushInt &&
					pc+3 < n &&
					(out[pc+3].Op == OpAdd || out[pc+3].Op == OpSub ||
						out[pc+3].Op == OpLt || out[pc+3].Op == OpLe)
				if !tripleNext {
					out[pc] = Instr{Op: OpLLLL, A: ins.A, B: out[pc+1].A}
					pc += 2
					continue
				}
			}
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			// cmp; jz T  →  cmp_jz T
			if free(pc+1) && out[pc+1].Op == OpJumpIfFalse {
				var fusedOp Opcode
				switch ins.Op {
				case OpEq:
					fusedOp = OpEqJF
				case OpNe:
					fusedOp = OpNeJF
				case OpLt:
					fusedOp = OpLtJF
				case OpLe:
					fusedOp = OpLeJF
				case OpGt:
					fusedOp = OpGtJF
				case OpGe:
					fusedOp = OpGeJF
				}
				out[pc] = Instr{Op: fusedOp, A: out[pc+1].A}
				pc += 2
				continue
			}
		case OpPushInt:
			// pushint A; ret  →  pushint_ret A
			if free(pc+1) && out[pc+1].Op == OpReturn {
				out[pc] = Instr{Op: OpPushIntRet, A: ins.A}
				pc += 2
				continue
			}
		}
		pc++
	}
	return out
}

// buildRT computes the runtime table for a prepared function: the
// exact operand-stack bound (the same dataflow the verifier runs, over
// the fused code) and inline-cache slots when any site needs them.
func buildRT(m *Module, f *Func) *funcRT {
	rt := &funcRT{maxStack: maxStackDepth(m, f)}
	for _, ins := range f.Code {
		switch ins.Op {
		case OpCallNamed, OpHostCall, OpLoadGlobal, OpStoreGlobal:
			rt.sites = make([]siteCache, len(f.Code))
		}
		if rt.sites != nil {
			break
		}
	}
	return rt
}

// maxStackDepth runs the verifier's depth dataflow (fused-aware via
// stackEffect) and returns the maximum operand depth reached. On any
// inconsistency — impossible for code that passed Verify — it falls
// back to the conservative bound the interpreter uses for unprepared
// functions.
func maxStackDepth(m *Module, f *Func) int {
	n := len(f.Code)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	if n == 0 {
		return conservativeStackBound(f)
	}
	depth[0] = 0
	work := []int{0}
	maxd := 0
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[pc]
		ins := f.Code[pc]
		pops, pushes, err := stackEffect(m, f, pc, ins)
		if err != nil || d < pops {
			return conservativeStackBound(f)
		}
		nd := d - pops + pushes
		// Fused arithmetic evaluates its virtual intermediates in
		// registers, so the *net* effect is the honest bound — except
		// the comparison fusions, whose two operands were already on
		// the stack before the head executed.
		if nd > maxd {
			maxd = nd
		}
		for _, s := range fusedSuccs(f, pc, ins) {
			if s < 0 || s >= n {
				return conservativeStackBound(f)
			}
			switch depth[s] {
			case -1:
				depth[s] = nd
				work = append(work, s)
			case nd:
			default:
				return conservativeStackBound(f)
			}
		}
	}
	return maxd
}

// conservativeStackBound bounds the operand stack of any verified
// function without running the dataflow: no instruction nets more than
// +1, and the verifier guarantees a consistent depth per pc, so depth
// can never exceed the instruction count (nor MaxVerifiedStack).
func conservativeStackBound(f *Func) int {
	if len(f.Code) < MaxVerifiedStack {
		return len(f.Code)
	}
	return MaxVerifiedStack
}

// fusedSuccs is the successor relation over possibly-fused code:
// execution advances by the opcode's width, branch targets are
// absolute, fused heads branch like their final component.
func fusedSuccs(f *Func, pc int, ins Instr) []int {
	switch ins.Op {
	case OpReturn, OpHalt, OpPushIntRet:
		return nil
	case OpJump:
		return []int{int(ins.A)}
	case OpJumpIfFalse, OpJumpIfTrue,
		OpEqJF, OpNeJF, OpLtJF, OpLeJF, OpGtJF, OpGeJF:
		return []int{int(ins.A), pc + ins.Op.Width()}
	default:
		return []int{pc + ins.Op.Width()}
	}
}
