package vm

import (
	"reflect"
	"testing"
)

// mod1 wraps one function body into a verifiable module.
func mod1(t *testing.T, nparams, nlocals int, code []Instr) *Module {
	t.Helper()
	m := &Module{
		Name: "m",
		Ints: []int64{0, 1, 2, 42},
		Strs: []string{"g", "log"},
		Fns:  []Func{{Name: "f", NParams: nparams, NLocals: nlocals, Code: code}},
	}
	if err := Verify(m); err != nil {
		t.Fatalf("canonical module does not verify: %v", err)
	}
	return m
}

func TestFusePatterns(t *testing.T) {
	cases := []struct {
		name string
		in   []Instr
		want []Opcode // expected opcode at each slot after fusion
	}{
		{
			name: "lli_add",
			in: []Instr{
				{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 1}, {Op: OpAdd},
				{Op: OpReturn},
			},
			want: []Opcode{OpLLIAdd, OpPushInt, OpAdd, OpReturn},
		},
		{
			name: "lli_lt_then_jz_not_refused",
			in: []Instr{
				{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 2}, {Op: OpLt},
				{Op: OpJumpIfFalse, A: 6},
				{Op: OpPushInt, A: 0}, {Op: OpReturn},
				{Op: OpPushInt, A: 1}, {Op: OpReturn},
			},
			// The triple wins at pc 0; the jz at pc 3 stays canonical
			// (its cmp partner was swallowed by the triple). Both
			// pushint;ret tails fuse.
			want: []Opcode{OpLLILt, OpPushInt, OpLt, OpJumpIfFalse,
				OpPushIntRet, OpReturn, OpPushIntRet, OpReturn},
		},
		{
			name: "cmp_jz",
			in: []Instr{
				{Op: OpLoadLocal, A: 0}, {Op: OpLoadLocal, A: 1}, {Op: OpEq},
				{Op: OpJumpIfFalse, A: 6},
				{Op: OpPushInt, A: 0}, {Op: OpReturn},
				{Op: OpPushInt, A: 1}, {Op: OpReturn},
			},
			// ll_ll pairs the two loads, then eq;jz fuses.
			want: []Opcode{OpLLLL, OpLoadLocal, OpEqJF, OpJumpIfFalse,
				OpPushIntRet, OpReturn, OpPushIntRet, OpReturn},
		},
		{
			name: "ll_ll_yields_to_triple",
			in: []Instr{
				{Op: OpLoadLocal, A: 0}, {Op: OpLoadLocal, A: 1},
				{Op: OpPushInt, A: 1}, {Op: OpAdd},
				{Op: OpReturn},
			},
			// loadl;loadl;pushint;add fuses better as loadl + lli_add.
			want: []Opcode{OpLoadLocal, OpLLIAdd, OpPushInt, OpAdd, OpReturn},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mod1(t, 2, 2, tc.in)
			fused := fuse(m.Fns[0].Code)
			if len(fused) != len(tc.in) {
				t.Fatalf("fusion changed code length: %d -> %d", len(tc.in), len(fused))
			}
			for pc := range fused {
				if fused[pc].Op != tc.want[pc] {
					t.Errorf("pc %d: op = %s, want %s", pc, fused[pc].Op, tc.want[pc])
				}
			}
			// Shadow slots must keep their original instructions
			// (PC-preservation: Pos tables and manifests key on slots).
			for pc := 0; pc < len(fused); {
				w := fused[pc].Op.Width()
				for s := pc + 1; s < pc+w; s++ {
					if fused[s] != tc.in[s] {
						t.Errorf("shadow slot %d rewritten: %v != %v", s, fused[s], tc.in[s])
					}
				}
				pc += w
			}
			// Idempotence: preparing prepared code changes nothing.
			again := fuse(fused)
			if !reflect.DeepEqual(again, fused) {
				t.Errorf("fuse is not idempotent:\n once: %v\ntwice: %v", fused, again)
			}
		})
	}
}

func TestFuseSkipsJumpTargets(t *testing.T) {
	// pc 1 (the pushint) is a jump target: the triple must not fuse,
	// or the jump would land inside a shadow.
	code := []Instr{
		{Op: OpLoadLocal, A: 0},  // 0
		{Op: OpPushInt, A: 1},    // 1  <- target
		{Op: OpAdd},              // 2
		{Op: OpDup},              // 3
		{Op: OpPushInt, A: 3},    // 4
		{Op: OpLt},               // 5
		{Op: OpJumpIfTrue, A: 1}, // 6 jumps into what the triple would cover
		{Op: OpReturn},           // 7
	}
	m := mod1(t, 1, 1, code)
	fused := fuse(m.Fns[0].Code)
	if fused[0].Op != OpLoadLocal {
		t.Fatalf("triple fused across a jump target: pc0 = %s", fused[0].Op)
	}
}

func TestVerifyAcceptsPrepared(t *testing.T) {
	code := []Instr{
		{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 2}, {Op: OpLt}, // lli_lt
		{Op: OpJumpIfFalse, A: 6},
		{Op: OpPushInt, A: 1}, {Op: OpReturn}, // pushint_ret
		{Op: OpLoadLocal, A: 0}, {Op: OpLoadLocal, A: 0}, {Op: OpAdd}, // ll_ll + add
		{Op: OpReturn},
	}
	m := mod1(t, 1, 1, code)
	p := Prepare(m)
	if !HasFused(p) {
		t.Fatal("Prepare produced no fused instructions")
	}
	if err := Verify(p); err != nil {
		t.Fatalf("prepared module does not verify: %v", err)
	}
	if HasFused(m) {
		t.Fatal("Prepare mutated the canonical module")
	}
	// Pools are shared, code is not.
	if &m.Fns[0].Code[0] == &p.Fns[0].Code[0] {
		t.Fatal("prepared code aliases canonical code")
	}
	if m.Fns[0].rt != nil {
		t.Fatal("canonical function gained a runtime table")
	}
	if p.Fns[0].rt == nil {
		t.Fatal("prepared function has no runtime table")
	}
}

func TestMaxStackDepthExact(t *testing.T) {
	// f(x): return (x + 1) + (x + 2) — depth peaks at 2.
	code := []Instr{
		{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 1}, {Op: OpAdd},
		{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 2}, {Op: OpAdd},
		{Op: OpAdd},
		{Op: OpReturn},
	}
	m := mod1(t, 1, 1, code)
	p := Prepare(m)
	if got := p.Fns[0].rt.maxStack; got != 2 {
		t.Fatalf("maxStack = %d, want 2", got)
	}
}

func TestFusedNeverCoversHostCalls(t *testing.T) {
	// Host-call pcs must be identical before and after Prepare — the
	// access manifest is keyed on them.
	code := []Instr{
		{Op: OpLoadLocal, A: 0}, {Op: OpPushInt, A: 1}, {Op: OpAdd},
		{Op: OpHostCall, A: 1, B: 1}, // log(x+1)
		{Op: OpReturn},
	}
	m := mod1(t, 1, 1, code)
	p := Prepare(m)
	var canonPCs, prepPCs []int
	for pc, ins := range m.Fns[0].Code {
		if ins.Op == OpHostCall {
			canonPCs = append(canonPCs, pc)
		}
	}
	for pc, ins := range p.Fns[0].Code {
		if ins.Op == OpHostCall {
			prepPCs = append(prepPCs, pc)
		}
	}
	if !reflect.DeepEqual(canonPCs, prepPCs) {
		t.Fatalf("host-call pcs moved: %v -> %v", canonPCs, prepPCs)
	}
}
