package vm

import "testing"

// FuzzVerify throws arbitrary instruction streams at the verifier:
// whatever the bytes decode to, Verify must return (accept or reject),
// never panic — it runs on every module received from the network.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(OpPushNil), 0, 0, byte(OpReturn), 0, 0})
	f.Add([]byte{byte(OpJump), 200, 0})
	f.Add([]byte{byte(OpPushInt), 9, 0, byte(OpHalt), 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &Module{
			Name: "fuzz",
			Ints: []int64{0, 1},
			Strs: []string{"go", "get_resource", "log"},
		}
		var code []Instr
		for i := 0; i+2 < len(data); i += 3 {
			code = append(code, Instr{
				Op: Opcode(data[i]),
				A:  int32(int8(data[i+1])),
				B:  int32(data[i+2] % 8),
			})
		}
		if len(code) == 0 {
			code = []Instr{{Op: OpPushNil}, {Op: OpReturn}}
		}
		m.Fns = []Func{{Name: "f", NParams: 1, NLocals: 2, Code: code}}
		_ = Verify(m) // must not panic
		_ = VerifyBundle([]Module{*m})
	})
}
