package vm

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
)

// Interpreter limits. MaxFrames bounds recursion depth; both exist to
// contain malicious or buggy agents (DoS protection, §2).
const (
	DefaultMaxFrames = 256
	DefaultFuel      = 10_000_000
)

// FuelWindow is the reservation granularity of the fast interpreter:
// the number of instructions an activity prepays from its shared Meter
// in one atomic operation. Larger windows amortize the atomics further;
// smaller windows tighten the abort-latency bound (an Abort from
// another goroutine is observed at the next window refill, i.e. within
// at most FuelWindow instructions) and the transient over-report of
// Used() while a run is in flight. At settlement the unspent remainder
// is refunded, so Used() is exact — equal to the naive per-instruction
// accounting — whenever no Run is active on the meter.
const FuelWindow = 128

// Runtime errors.
var (
	ErrFuelExhausted = errors.New("vm: instruction quota exhausted")
	ErrTrap          = errors.New("vm: trap")
	ErrNoFunction    = errors.New("vm: no such function")
	ErrStackOverflow = errors.New("vm: call stack overflow")
)

func trap(m *Module, f *Func, pc int, format string, args ...any) error {
	return fmt.Errorf("%w: %s.%s@%d: %s", ErrTrap, m.Name, f.Name, pc, fmt.Sprintf(format, args...))
}

// Meter charges executed instructions against a budget. It is shared by
// every frame of an execution (and may be shared across an agent's whole
// visit). Thread-safe so a server can inspect usage concurrently and
// abort a runaway activity from another goroutine.
//
// The fast interpreter does not charge per instruction: it reserves
// FuelWindow instructions at a time (refill), burns them from a local
// counter, and refunds the unspent remainder at settlement (refund).
// Used() therefore over-reports by at most one window while a run is in
// flight and is exact at every settlement point.
type Meter struct {
	limit   uint64
	used    atomic.Uint64
	aborted atomic.Bool
}

// ErrAborted is returned once a meter has been aborted (e.g. the agent
// was killed by its owner or the server).
var ErrAborted = errors.New("vm: execution aborted")

// Abort makes every subsequent Charge fail, stopping the activity
// within at most one reservation window (and before its next host
// call).
func (mt *Meter) Abort() {
	if mt != nil {
		mt.aborted.Store(true)
	}
}

// NewMeter returns a meter with the given instruction budget; limit 0
// means unlimited.
func NewMeter(limit uint64) *Meter { return &Meter{limit: limit} }

// Charge consumes n instructions, failing once the budget is exceeded
// or the meter has been aborted. This is the naive per-call interface,
// kept for host-side accounting and the preserved baseline interpreter;
// the fast interpreter goes through refill/refund.
func (mt *Meter) Charge(n uint64) error {
	if mt == nil {
		return nil
	}
	if mt.aborted.Load() {
		return ErrAborted
	}
	if mt.limit == 0 {
		mt.used.Add(n)
		return nil
	}
	if mt.used.Add(n) > mt.limit {
		return ErrFuelExhausted
	}
	return nil
}

// refill reserves up to want instructions, returning the granted count.
// A grant is charged to used immediately; the unspent part must be
// returned via refund at settlement. On exhaustion it charges one extra
// unit and fails — exactly the accounting of a failing naive Charge(1),
// which keeps Used() identical to per-instruction metering on the
// exhaustion path.
func (mt *Meter) refill(want uint64) (uint64, error) {
	if mt.aborted.Load() {
		return 0, ErrAborted
	}
	if mt.limit == 0 {
		mt.used.Add(want)
		return want, nil
	}
	for {
		u := mt.used.Load()
		if u >= mt.limit {
			mt.used.Add(1)
			return 0, ErrFuelExhausted
		}
		grant := mt.limit - u
		if grant > want {
			grant = want
		}
		if mt.used.CompareAndSwap(u, u+grant) {
			return grant, nil
		}
	}
}

// refund returns n unspent reserved instructions.
func (mt *Meter) refund(n uint64) {
	if mt == nil || n == 0 {
		return
	}
	mt.used.Add(^(n - 1))
}

// topUp grows a local reservation of have instructions until it covers
// need, then consumes need and returns the remainder. On abort the
// accumulated (unexecuted) reservation is refunded; on exhaustion the
// partial grants stay charged, mirroring the naive interpreter whose
// successful Charges before the failing one are never unwound. Either
// way the caller's local fuel is spent (0 is returned), so settlement
// refunds nothing extra.
func (mt *Meter) topUp(have, need uint64) (uint64, error) {
	if mt == nil {
		return ^uint64(0), nil
	}
	for have < need {
		g, err := mt.refill(FuelWindow)
		if err != nil {
			if errors.Is(err, ErrAborted) {
				mt.refund(have)
			}
			return 0, err
		}
		have += g
	}
	return have - need, nil
}

// Used reports instructions consumed so far. While a Run is in flight
// on this meter the value may transiently include up to one unspent
// reservation window; at settlement (whenever no Run is active) it is
// exact.
func (mt *Meter) Used() uint64 {
	if mt == nil {
		return 0
	}
	return mt.used.Load()
}

// Limit reports the configured budget (0 = unlimited).
func (mt *Meter) Limit() uint64 {
	if mt == nil {
		return 0
	}
	return mt.limit
}

// HostFunc is a host-provided primitive. Host functions are the *only*
// way agent code affects anything outside its own state; servers install
// them already wrapped in security-manager checks.
type HostFunc func(args []Value) (Value, error)

// Resolver resolves cross-module calls ("module:function" or a bare
// function name). The loader package provides the namespace-separating
// implementation; tests may use a single module via ModuleResolver.
type Resolver interface {
	ResolveFunc(name string) (*Module, *Func, error)
}

// EpochResolver is a Resolver whose resolution function can change over
// time (e.g. a namespace into which trusted modules are installed). The
// epoch must increase whenever an existing name could resolve
// differently; the interpreter keys its call-site inline caches on it.
// Cache invalidation is observed at Run boundaries: an epoch bump
// during a Run takes effect for call sites cached before the bump at
// the next Run on that environment (uncached sites always resolve
// through the live Resolver).
type EpochResolver interface {
	Resolver
	Epoch() uint64
}

// ModuleResolver resolves names within one module only.
type ModuleResolver struct{ M *Module }

// ResolveFunc implements Resolver.
func (r ModuleResolver) ResolveFunc(name string) (*Module, *Func, error) {
	if _, f := r.M.Fn(name); f != nil {
		return r.M, f, nil
	}
	return nil, nil, fmt.Errorf("%w: %q", ErrNoFunction, name)
}

// Env is the execution environment of one activity: the agent's global
// state, the host-call table, the namespace resolver, and the meter.
// The env also carries an opaque Owner tag that host functions may use
// to identify the calling protection domain; agent code cannot read or
// forge it.
//
// An Env is single-activity state: it must not execute concurrent Runs
// (nested Runs from within a host call are fine). While a Run is in
// flight, Globals is not live: the interpreter snapshots globals into
// dense slots at the outermost Run entry and flushes modified slots
// back when that Run settles. Host functions must therefore not read or
// write Env.Globals mid-run — they receive and return Values through
// their arguments instead. Between Runs, Globals is authoritative and
// may be freely inspected or mutated.
type Env struct {
	Globals   map[string]Value
	Host      map[string]HostFunc
	Resolver  Resolver
	Meter     *Meter
	MaxFrames int
	// Owner is an opaque host-side tag (the protection-domain ID in
	// the server). It never appears as a Value.
	Owner any

	// depth counts nested Run activations; globals sync in at 0→1 and
	// flush back at 1→0.
	depth int
	// act is the reusable execution arena of the outermost Run.
	act *activity
	// Dense global slots: gidx maps a global's name to its slot, gslots
	// holds the live values during a Run, gdirty marks slots written
	// since the last flush (so never-written globals don't materialize
	// map entries).
	gidx   map[string]int32
	gslots []Value
	gdirty []bool
}

// NewEnv returns an environment with empty state and defaults.
func NewEnv() *Env {
	return &Env{
		Globals:   make(map[string]Value),
		Host:      make(map[string]HostFunc),
		Resolver:  nil,
		Meter:     NewMeter(DefaultFuel),
		MaxFrames: DefaultMaxFrames,
	}
}

// globalSlot returns the dense slot of the named global, creating it
// (initialized from the Globals map) on first use.
func (env *Env) globalSlot(name string) int32 {
	if i, ok := env.gidx[name]; ok {
		return i
	}
	if env.gidx == nil {
		env.gidx = make(map[string]int32)
	}
	i := int32(len(env.gslots))
	env.gidx[name] = i
	env.gslots = append(env.gslots, env.Globals[name])
	env.gdirty = append(env.gdirty, false)
	return i
}

// syncGlobalsIn refreshes every known slot from the Globals map. Runs
// at the outermost Run entry so host-side mutations between Runs (state
// sanitization, checkpoint restore, test setup) are observed.
func (env *Env) syncGlobalsIn() {
	for name, i := range env.gidx {
		env.gslots[i] = env.Globals[name]
		env.gdirty[i] = false
	}
}

// flushGlobals writes modified slots back to the Globals map at the
// outermost Run settlement (on success and on every error path alike).
func (env *Env) flushGlobals() {
	for name, i := range env.gidx {
		if env.gdirty[i] {
			if env.Globals == nil {
				env.Globals = make(map[string]Value)
			}
			env.Globals[name] = env.gslots[i]
			env.gdirty[i] = false
		}
	}
}

// frameRec is a suspended caller frame. Frames are indices into the
// shared value-stack arena, not per-frame allocations: base is where
// the frame's locals start, and the callee's locals overlap the
// arguments the caller pushed.
type frameRec struct {
	m     *Module
	f     *Func
	sites []siteCache
	ip    int
	base  int
}

// activity is the reusable execution arena of one Env: the contiguous
// value stack every frame lives in, and the suspended-frame stack.
// Both retain their capacity across Runs, which is what makes the
// steady-state call path allocation-free.
type activity struct {
	stack  []Value
	frames []frameRec
}

// grow reallocates the arena to hold at least n values and returns it.
func (act *activity) grow(n int) []Value {
	c := 2*cap(act.stack) + 64
	if c < n {
		c = n
	}
	ns := make([]Value, c)
	copy(ns, act.stack)
	act.stack = ns
	return ns
}

// Run executes function fname of module m with the given arguments and
// returns its result. The module must already be verified — Run assumes
// structural validity (bounds) established by Verify, but still guards
// dynamic properties (types, division by zero, index range).
//
// Run executes both canonical modules and the prepared execution copies
// built by Prepare (which carry fused superinstructions and inline-cache
// tables); semantics, error classes and settled fuel accounting are
// identical either way.
func Run(env *Env, m *Module, fname string, args ...Value) (Value, error) {
	_, f := m.Fn(fname)
	if f == nil {
		return Nil(), fmt.Errorf("%w: %s.%s", ErrNoFunction, m.Name, fname)
	}
	if len(args) != f.NParams {
		return Nil(), fmt.Errorf("%w: %s.%s wants %d args, got %d", ErrTrap, m.Name, fname, f.NParams, len(args))
	}
	maxFrames := env.MaxFrames
	if maxFrames == 0 {
		maxFrames = DefaultMaxFrames
	}

	var act *activity
	if env.depth == 0 {
		if env.act == nil {
			env.act = &activity{}
		}
		act = env.act
		env.syncGlobalsIn()
	} else {
		// Nested Run from within a host call: the outer Run owns
		// env.act, so this (rare, correctness-only) path gets a fresh
		// arena. Global slots are shared through env, so both nesting
		// levels see one consistent view.
		act = &activity{}
	}
	env.depth++
	defer func() {
		env.depth--
		if env.depth == 0 {
			env.flushGlobals()
		}
	}()
	return env.exec(act, m, f, args, maxFrames)
}

// fusedCmpBase maps a fused compare-and-branch opcode to the canonical
// comparison it stands for (used so trap messages match the naive
// interpreter's exactly).
func fusedCmpBase(op Opcode) Opcode {
	switch op {
	case OpLtJF:
		return OpLt
	case OpLeJF:
		return OpLe
	case OpGtJF:
		return OpGt
	default:
		return OpGe
	}
}

// cmpOrder returns the ordering of two values (-1, 0, 1) and whether
// they are ordered at all (two ints or two strings).
func cmpOrder(a, b Value) (int, bool) {
	switch {
	case a.Kind == KindInt && b.Kind == KindInt:
		switch {
		case a.Int < b.Int:
			return -1, true
		case a.Int > b.Int:
			return 1, true
		}
		return 0, true
	case a.Kind == KindStr && b.Kind == KindStr:
		switch {
		case a.Str < b.Str:
			return -1, true
		case a.Str > b.Str:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// exec is the interpreter core. The hot state of the current frame —
// code, ip, stack pointer, frame base, the local fuel reservation —
// lives in locals so the compiler can keep it in registers; it is
// spilled to a frameRec only across calls. There is a single settlement
// point (after the labeled loop) where the unspent fuel reservation is
// refunded, so Used() is exact on every return path.
func (env *Env) exec(act *activity, m *Module, f *Func, args []Value, maxFrames int) (Value, error) {
	meter := env.Meter

	// Inline-cache ownership for named-call sites. Caching requires a
	// comparable resolver (so a cached site can be revalidated with ==);
	// func-typed test resolvers simply resolve through the slow path.
	var curEpoch uint64
	resCmp := env.Resolver != nil && reflect.TypeOf(env.Resolver).Comparable()
	if er, ok := env.Resolver.(EpochResolver); ok {
		curEpoch = er.Epoch()
	}

	// Entry frame.
	curM, curF := m, f
	frames := act.frames[:0]
	stk := act.stack
	base := 0
	var sites []siteCache
	var bound int
	if rt := curF.rt; rt != nil {
		sites = rt.sites
		bound = rt.maxStack
	} else {
		bound = conservativeStackBound(curF)
	}
	if need := curF.NLocals + bound; need > len(stk) {
		stk = act.grow(need)
	}
	copy(stk, args)
	for i := len(args); i < curF.NLocals; i++ {
		stk[i] = Value{}
	}
	sp := curF.NLocals
	ip := 0
	code := curF.Code

	// fuel is the local reservation: instructions prepaid to the meter
	// but not yet executed. With no meter it starts effectively
	// infinite and the refill path is never taken.
	var fuel uint64
	if meter == nil {
		fuel = ^uint64(0)
	}

	var rv Value
	var rerr error

loop:
	for {
		if fuel == 0 {
			fuel, rerr = meter.topUp(0, 1)
			if rerr != nil {
				break loop
			}
		} else {
			fuel--
		}
		ins := code[ip]
		ip++
		switch ins.Op {
		case OpNop:
		case OpPushInt:
			stk[sp] = I(curM.Ints[ins.A])
			sp++
		case OpPushStr:
			stk[sp] = S(curM.Strs[ins.A])
			sp++
		case OpPushTrue:
			stk[sp] = B(true)
			sp++
		case OpPushFalse:
			stk[sp] = B(false)
			sp++
		case OpPushNil:
			stk[sp] = Nil()
			sp++
		case OpLoadLocal:
			stk[sp] = stk[base+int(ins.A)]
			sp++
		case OpStoreLocal:
			sp--
			stk[base+int(ins.A)] = stk[sp]
		case OpLoadGlobal:
			var slot int32
			if sites != nil {
				s := &sites[ip-1]
				if s.env == env {
					slot = s.slot
				} else {
					slot = env.globalSlot(curM.Strs[ins.A])
					s.env, s.slot = env, slot
				}
			} else {
				slot = env.globalSlot(curM.Strs[ins.A])
			}
			stk[sp] = env.gslots[slot]
			sp++
		case OpStoreGlobal:
			var slot int32
			if sites != nil {
				s := &sites[ip-1]
				if s.env == env {
					slot = s.slot
				} else {
					slot = env.globalSlot(curM.Strs[ins.A])
					s.env, s.slot = env, slot
				}
			} else {
				slot = env.globalSlot(curM.Strs[ins.A])
			}
			sp--
			env.gslots[slot] = stk[sp]
			env.gdirty[slot] = true
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			b, a := stk[sp-1], stk[sp-2]
			sp--
			if a.Kind == KindInt && b.Kind == KindInt {
				var r int64
				switch ins.Op {
				case OpAdd:
					r = a.Int + b.Int
				case OpSub:
					r = a.Int - b.Int
				case OpMul:
					r = a.Int * b.Int
				case OpDiv:
					if b.Int == 0 {
						rerr = trap(curM, curF, ip-1, "division by zero")
						break loop
					}
					r = a.Int / b.Int
				default:
					if b.Int == 0 {
						rerr = trap(curM, curF, ip-1, "modulo by zero")
						break loop
					}
					r = a.Int % b.Int
				}
				stk[sp-1] = I(r)
			} else if ins.Op == OpAdd && a.Kind == KindStr && b.Kind == KindStr {
				// String concatenation rides on Add.
				stk[sp-1] = S(a.Str + b.Str)
			} else {
				rerr = trap(curM, curF, ip-1, "%s of %s and %s", ins.Op, a.Kind, b.Kind)
				break loop
			}
		case OpNeg:
			a := stk[sp-1]
			if a.Kind != KindInt {
				rerr = trap(curM, curF, ip-1, "neg of %s", a.Kind)
				break loop
			}
			stk[sp-1] = I(-a.Int)
		case OpEq:
			b, a := stk[sp-1], stk[sp-2]
			sp--
			stk[sp-1] = B(a.Equal(b))
		case OpNe:
			b, a := stk[sp-1], stk[sp-2]
			sp--
			stk[sp-1] = B(!a.Equal(b))
		case OpLt, OpLe, OpGt, OpGe:
			b, a := stk[sp-1], stk[sp-2]
			sp--
			c, ok := cmpOrder(a, b)
			if !ok {
				rerr = trap(curM, curF, ip-1, "%s of %s and %s", ins.Op, a.Kind, b.Kind)
				break loop
			}
			var t bool
			switch ins.Op {
			case OpLt:
				t = c < 0
			case OpLe:
				t = c <= 0
			case OpGt:
				t = c > 0
			default:
				t = c >= 0
			}
			stk[sp-1] = B(t)
		case OpNot:
			stk[sp-1] = B(!stk[sp-1].Truthy())
		case OpJump:
			ip = int(ins.A)
		case OpJumpIfFalse:
			sp--
			if !stk[sp].Truthy() {
				ip = int(ins.A)
			}
		case OpJumpIfTrue:
			sp--
			if stk[sp].Truthy() {
				ip = int(ins.A)
			}
		case OpCall:
			cm, cf := curM, &curM.Fns[ins.A]
			argc := int(ins.B)
			if len(frames)+1 >= maxFrames {
				rerr = ErrStackOverflow
				break loop
			}
			frames = append(frames, frameRec{m: curM, f: curF, sites: sites, ip: ip, base: base})
			base = sp - argc
			curM, curF = cm, cf
			code = curF.Code
			if rt := curF.rt; rt != nil {
				sites = rt.sites
				bound = rt.maxStack
			} else {
				sites = nil
				bound = conservativeStackBound(curF)
			}
			if need := base + curF.NLocals + bound; need > len(stk) {
				stk = act.grow(need)
			}
			for i := base + argc; i < base+curF.NLocals; i++ {
				stk[i] = Value{}
			}
			sp = base + curF.NLocals
			ip = 0
		case OpCallNamed:
			var cm *Module
			var cf *Func
			if sites != nil {
				if s := &sites[ip-1]; s.fn != nil && s.res == env.Resolver && s.epoch == curEpoch {
					cm, cf = s.mod, s.fn
				}
			}
			if cf == nil {
				name := curM.Strs[ins.A]
				if env.Resolver == nil {
					rerr = trap(curM, curF, ip-1, "no resolver for %q", name)
					break loop
				}
				var err error
				cm, cf, err = env.Resolver.ResolveFunc(name)
				if err != nil {
					rerr = trap(curM, curF, ip-1, "resolve %q: %v", name, err)
					break loop
				}
				if cf.NParams != int(ins.B) {
					rerr = trap(curM, curF, ip-1, "%q wants %d args, got %d", name, cf.NParams, ins.B)
					break loop
				}
				if sites != nil && resCmp {
					sites[ip-1] = siteCache{res: env.Resolver, epoch: curEpoch, mod: cm, fn: cf}
				}
			}
			argc := int(ins.B)
			if len(frames)+1 >= maxFrames {
				rerr = ErrStackOverflow
				break loop
			}
			frames = append(frames, frameRec{m: curM, f: curF, sites: sites, ip: ip, base: base})
			base = sp - argc
			curM, curF = cm, cf
			code = curF.Code
			if rt := curF.rt; rt != nil {
				sites = rt.sites
				bound = rt.maxStack
			} else {
				sites = nil
				bound = conservativeStackBound(curF)
			}
			if need := base + curF.NLocals + bound; need > len(stk) {
				stk = act.grow(need)
			}
			for i := base + argc; i < base+curF.NLocals; i++ {
				stk[i] = Value{}
			}
			sp = base + curF.NLocals
			ip = 0
		case OpHostCall:
			var hf HostFunc
			if sites != nil {
				if s := &sites[ip-1]; s.host != nil && s.env == env {
					hf = s.host
				}
			}
			if hf == nil {
				name := curM.Strs[ins.A]
				hf = env.Host[name]
				if hf == nil {
					rerr = trap(curM, curF, ip-1, "no host function %q", name)
					break loop
				}
				if sites != nil {
					s := &sites[ip-1]
					s.env, s.host = env, hf
				}
			}
			// Observe a cross-goroutine Abort before crossing into host
			// code, so abort latency is bounded by one reservation
			// window of pure bytecode OR one host call, whichever comes
			// first.
			if meter != nil && meter.aborted.Load() {
				rerr = ErrAborted
				break loop
			}
			argc := int(ins.B)
			hargs := make([]Value, argc)
			copy(hargs, stk[sp-argc:sp])
			sp -= argc
			v, err := hf(hargs)
			if err != nil {
				// Host errors abort execution and surface to the
				// server (which distinguishes migration requests,
				// security denials and plain failures).
				rerr = err
				break loop
			}
			stk[sp] = v
			sp++
		case OpReturn:
			sp--
			v := stk[sp]
			if len(frames) == 0 {
				rv = v
				break loop
			}
			fr := &frames[len(frames)-1]
			stk[base] = v
			sp = base + 1
			curM, curF, sites, ip, base = fr.m, fr.f, fr.sites, fr.ip, fr.base
			code = curF.Code
			frames = frames[:len(frames)-1]
		case OpPop:
			sp--
		case OpDup:
			stk[sp] = stk[sp-1]
			sp++
		case OpMakeList:
			n := int(ins.A)
			elems := make([]Value, n)
			copy(elems, stk[sp-n:sp])
			sp -= n
			stk[sp] = L(elems...)
			sp++
		case OpIndex:
			idx, agg := stk[sp-1], stk[sp-2]
			v, err := index(curM, curF, ip-1, agg, idx)
			if err != nil {
				rerr = err
				break loop
			}
			sp--
			stk[sp-1] = v
		case OpSetIndex:
			val, idx, agg := stk[sp-1], stk[sp-2], stk[sp-3]
			if err := setIndex(curM, curF, ip-1, agg, idx, val); err != nil {
				rerr = err
				break loop
			}
			sp -= 2
			stk[sp-1] = Nil()
		case OpMakeMap:
			n := 2 * int(ins.A)
			mm := make(map[string]Value, ins.A)
			bad := false
			for i := sp - n; i < sp; i += 2 {
				if stk[i].Kind != KindStr {
					rerr = trap(curM, curF, ip-1, "map key is %s, want str", stk[i].Kind)
					bad = true
					break
				}
				mm[stk[i].Str] = stk[i+1]
			}
			if bad {
				break loop
			}
			sp -= n
			stk[sp] = M(mm)
			sp++
		case OpHalt:
			sp--
			rv = stk[sp]
			break loop

		case OpLLIAdd, OpLLISub:
			// Covers loadl;pushint;{add,sub}: 3 canonical instructions,
			// so 2 units beyond the dispatch charge — all upfront, which
			// matches the naive accounting because the only trap is at
			// the third component.
			if fuel >= 2 {
				fuel -= 2
			} else {
				fuel, rerr = meter.topUp(fuel, 2)
				if rerr != nil {
					break loop
				}
			}
			a := stk[base+int(ins.A)]
			if a.Kind != KindInt {
				op := OpAdd
				if ins.Op == OpLLISub {
					op = OpSub
				}
				rerr = trap(curM, curF, ip+1, "%s of %s and %s", op, a.Kind, KindInt)
				break loop
			}
			if ins.Op == OpLLIAdd {
				stk[sp] = I(a.Int + curM.Ints[ins.B])
			} else {
				stk[sp] = I(a.Int - curM.Ints[ins.B])
			}
			sp++
			ip += 2
		case OpLLILt, OpLLILe:
			if fuel >= 2 {
				fuel -= 2
			} else {
				fuel, rerr = meter.topUp(fuel, 2)
				if rerr != nil {
					break loop
				}
			}
			a := stk[base+int(ins.A)]
			if a.Kind != KindInt {
				op := OpLt
				if ins.Op == OpLLILe {
					op = OpLe
				}
				rerr = trap(curM, curF, ip+1, "%s of %s and %s", op, a.Kind, KindInt)
				break loop
			}
			c := curM.Ints[ins.B]
			var t bool
			if ins.Op == OpLLILt {
				t = a.Int < c
			} else {
				t = a.Int <= c
			}
			stk[sp] = B(t)
			sp++
			ip += 2
		case OpLLLL:
			if fuel >= 1 {
				fuel--
			} else {
				fuel, rerr = meter.topUp(fuel, 1)
				if rerr != nil {
					break loop
				}
			}
			stk[sp] = stk[base+int(ins.A)]
			stk[sp+1] = stk[base+int(ins.B)]
			sp += 2
			ip++
		case OpEqJF, OpNeJF:
			b, a := stk[sp-1], stk[sp-2]
			sp -= 2
			cond := a.Equal(b)
			if ins.Op == OpNeJF {
				cond = !cond
			}
			// The branch half is charged separately *after* the compare
			// executed: on a compare trap the naive interpreter never
			// reaches the jz charge, and fuel parity must hold on trap
			// paths too. (Eq/Ne cannot trap, but the charging protocol
			// is uniform across the cmp_jz family.)
			if fuel >= 1 {
				fuel--
			} else {
				fuel, rerr = meter.topUp(fuel, 1)
				if rerr != nil {
					break loop
				}
			}
			if !cond {
				ip = int(ins.A)
			} else {
				ip++
			}
		case OpLtJF, OpLeJF, OpGtJF, OpGeJF:
			b, a := stk[sp-1], stk[sp-2]
			sp -= 2
			c, ok := cmpOrder(a, b)
			if !ok {
				rerr = trap(curM, curF, ip-1, "%s of %s and %s", fusedCmpBase(ins.Op), a.Kind, b.Kind)
				break loop
			}
			var cond bool
			switch ins.Op {
			case OpLtJF:
				cond = c < 0
			case OpLeJF:
				cond = c <= 0
			case OpGtJF:
				cond = c > 0
			default:
				cond = c >= 0
			}
			if fuel >= 1 {
				fuel--
			} else {
				fuel, rerr = meter.topUp(fuel, 1)
				if rerr != nil {
					break loop
				}
			}
			if !cond {
				ip = int(ins.A)
			} else {
				ip++
			}
		case OpPushIntRet:
			if fuel >= 1 {
				fuel--
			} else {
				fuel, rerr = meter.topUp(fuel, 1)
				if rerr != nil {
					break loop
				}
			}
			v := I(curM.Ints[ins.A])
			if len(frames) == 0 {
				rv = v
				break loop
			}
			fr := &frames[len(frames)-1]
			stk[base] = v
			sp = base + 1
			curM, curF, sites, ip, base = fr.m, fr.f, fr.sites, fr.ip, fr.base
			code = curF.Code
			frames = frames[:len(frames)-1]

		default:
			rerr = trap(curM, curF, ip-1, "unknown opcode %d", ins.Op)
			break loop
		}
	}

	// Single settlement point: give back the unspent reservation (error
	// paths that must keep their charges — exhaustion — zero fuel before
	// breaking) and park the arena for the next Run.
	if meter != nil {
		meter.refund(fuel)
	}
	act.stack = stk
	act.frames = frames[:0]
	return rv, rerr
}

func index(m *Module, f *Func, pc int, agg, idx Value) (Value, error) {
	switch agg.Kind {
	case KindList:
		if idx.Kind != KindInt {
			return Nil(), trap(m, f, pc, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return Nil(), trap(m, f, pc, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		return agg.List[idx.Int], nil
	case KindMap:
		if idx.Kind != KindStr {
			return Nil(), trap(m, f, pc, "map key is %s", idx.Kind)
		}
		return agg.Map[idx.Str], nil
	case KindStr:
		if idx.Kind != KindInt {
			return Nil(), trap(m, f, pc, "string index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.Str)) {
			return Nil(), trap(m, f, pc, "index %d out of range (len %d)", idx.Int, len(agg.Str))
		}
		return S(string(agg.Str[idx.Int])), nil
	default:
		return Nil(), trap(m, f, pc, "cannot index %s", agg.Kind)
	}
}

func setIndex(m *Module, f *Func, pc int, agg, idx, val Value) error {
	switch agg.Kind {
	case KindList:
		if idx.Kind != KindInt {
			return trap(m, f, pc, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return trap(m, f, pc, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		agg.List[idx.Int] = val
		return nil
	case KindMap:
		if idx.Kind != KindStr {
			return trap(m, f, pc, "map key is %s", idx.Kind)
		}
		agg.Map[idx.Str] = val
		return nil
	default:
		return trap(m, f, pc, "cannot set-index %s", agg.Kind)
	}
}
