package vm

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Interpreter limits. MaxFrames bounds recursion depth; both exist to
// contain malicious or buggy agents (DoS protection, §2).
const (
	DefaultMaxFrames = 256
	DefaultFuel      = 10_000_000
)

// Runtime errors.
var (
	ErrFuelExhausted = errors.New("vm: instruction quota exhausted")
	ErrTrap          = errors.New("vm: trap")
	ErrNoFunction    = errors.New("vm: no such function")
	ErrStackOverflow = errors.New("vm: call stack overflow")
)

func trap(m *Module, f *Func, pc int, format string, args ...any) error {
	return fmt.Errorf("%w: %s.%s@%d: %s", ErrTrap, m.Name, f.Name, pc, fmt.Sprintf(format, args...))
}

// Meter charges executed instructions against a budget. It is shared by
// every frame of an execution (and may be shared across an agent's whole
// visit). Thread-safe so a server can inspect usage concurrently and
// abort a runaway activity from another goroutine.
type Meter struct {
	limit   uint64
	used    atomic.Uint64
	aborted atomic.Bool
}

// ErrAborted is returned once a meter has been aborted (e.g. the agent
// was killed by its owner or the server).
var ErrAborted = errors.New("vm: execution aborted")

// Abort makes every subsequent Charge fail, stopping the activity at
// its next instruction.
func (mt *Meter) Abort() {
	if mt != nil {
		mt.aborted.Store(true)
	}
}

// NewMeter returns a meter with the given instruction budget; limit 0
// means unlimited.
func NewMeter(limit uint64) *Meter { return &Meter{limit: limit} }

// Charge consumes n instructions, failing once the budget is exceeded
// or the meter has been aborted.
func (mt *Meter) Charge(n uint64) error {
	if mt == nil {
		return nil
	}
	if mt.aborted.Load() {
		return ErrAborted
	}
	if mt.limit == 0 {
		mt.used.Add(n)
		return nil
	}
	if mt.used.Add(n) > mt.limit {
		return ErrFuelExhausted
	}
	return nil
}

// Used reports instructions consumed so far.
func (mt *Meter) Used() uint64 {
	if mt == nil {
		return 0
	}
	return mt.used.Load()
}

// Limit reports the configured budget (0 = unlimited).
func (mt *Meter) Limit() uint64 {
	if mt == nil {
		return 0
	}
	return mt.limit
}

// HostFunc is a host-provided primitive. Host functions are the *only*
// way agent code affects anything outside its own state; servers install
// them already wrapped in security-manager checks.
type HostFunc func(args []Value) (Value, error)

// Resolver resolves cross-module calls ("module:function" or a bare
// function name). The loader package provides the namespace-separating
// implementation; tests may use a single module via ModuleResolver.
type Resolver interface {
	ResolveFunc(name string) (*Module, *Func, error)
}

// ModuleResolver resolves names within one module only.
type ModuleResolver struct{ M *Module }

// ResolveFunc implements Resolver.
func (r ModuleResolver) ResolveFunc(name string) (*Module, *Func, error) {
	if _, f := r.M.Fn(name); f != nil {
		return r.M, f, nil
	}
	return nil, nil, fmt.Errorf("%w: %q", ErrNoFunction, name)
}

// Env is the execution environment of one activity: the agent's global
// state, the host-call table, the namespace resolver, and the meter.
// The env also carries an opaque Owner tag that host functions may use
// to identify the calling protection domain; agent code cannot read or
// forge it.
type Env struct {
	Globals   map[string]Value
	Host      map[string]HostFunc
	Resolver  Resolver
	Meter     *Meter
	MaxFrames int
	// Owner is an opaque host-side tag (the protection-domain ID in
	// the server). It never appears as a Value.
	Owner any
}

// NewEnv returns an environment with empty state and defaults.
func NewEnv() *Env {
	return &Env{
		Globals:   make(map[string]Value),
		Host:      make(map[string]HostFunc),
		Resolver:  nil,
		Meter:     NewMeter(DefaultFuel),
		MaxFrames: DefaultMaxFrames,
	}
}

type frame struct {
	m      *Module
	f      *Func
	ip     int
	locals []Value
	stack  []Value
}

// Run executes function fname of module m with the given arguments and
// returns its result. The module must already be verified — Run assumes
// structural validity (bounds) established by Verify, but still guards
// dynamic properties (types, division by zero, index range).
func Run(env *Env, m *Module, fname string, args ...Value) (Value, error) {
	_, f := m.Fn(fname)
	if f == nil {
		return Nil(), fmt.Errorf("%w: %s.%s", ErrNoFunction, m.Name, fname)
	}
	if len(args) != f.NParams {
		return Nil(), fmt.Errorf("%w: %s.%s wants %d args, got %d", ErrTrap, m.Name, fname, f.NParams, len(args))
	}
	if env.MaxFrames == 0 {
		env.MaxFrames = DefaultMaxFrames
	}
	frames := make([]*frame, 0, 8)
	frames = append(frames, newFrame(m, f, args))

	for {
		fr := frames[len(frames)-1]
		if err := env.Meter.Charge(1); err != nil {
			return Nil(), err
		}
		ins := fr.f.Code[fr.ip]
		fr.ip++
		switch ins.Op {
		case OpNop:
		case OpPushInt:
			fr.push(I(fr.m.Ints[ins.A]))
		case OpPushStr:
			fr.push(S(fr.m.Strs[ins.A]))
		case OpPushTrue:
			fr.push(B(true))
		case OpPushFalse:
			fr.push(B(false))
		case OpPushNil:
			fr.push(Nil())
		case OpLoadLocal:
			fr.push(fr.locals[ins.A])
		case OpStoreLocal:
			fr.locals[ins.A] = fr.pop()
		case OpLoadGlobal:
			fr.push(env.Globals[fr.m.Strs[ins.A]])
		case OpStoreGlobal:
			env.Globals[fr.m.Strs[ins.A]] = fr.pop()
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			b, a := fr.pop(), fr.pop()
			v, err := arith(fr, ins.Op, a, b)
			if err != nil {
				return Nil(), err
			}
			fr.push(v)
		case OpNeg:
			a := fr.pop()
			if a.Kind != KindInt {
				return Nil(), trap(fr.m, fr.f, fr.ip-1, "neg of %s", a.Kind)
			}
			fr.push(I(-a.Int))
		case OpEq:
			b, a := fr.pop(), fr.pop()
			fr.push(B(a.Equal(b)))
		case OpNe:
			b, a := fr.pop(), fr.pop()
			fr.push(B(!a.Equal(b)))
		case OpLt, OpLe, OpGt, OpGe:
			b, a := fr.pop(), fr.pop()
			v, err := compare(fr, ins.Op, a, b)
			if err != nil {
				return Nil(), err
			}
			fr.push(v)
		case OpNot:
			fr.push(B(!fr.pop().Truthy()))
		case OpJump:
			fr.ip = int(ins.A)
		case OpJumpIfFalse:
			if !fr.pop().Truthy() {
				fr.ip = int(ins.A)
			}
		case OpJumpIfTrue:
			if fr.pop().Truthy() {
				fr.ip = int(ins.A)
			}
		case OpCall:
			callee := &fr.m.Fns[ins.A]
			if len(frames) >= env.MaxFrames {
				return Nil(), ErrStackOverflow
			}
			args := fr.popN(int(ins.B))
			frames = append(frames, newFrame(fr.m, callee, args))
		case OpCallNamed:
			name := fr.m.Strs[ins.A]
			if env.Resolver == nil {
				return Nil(), trap(fr.m, fr.f, fr.ip-1, "no resolver for %q", name)
			}
			cm, cf, err := env.Resolver.ResolveFunc(name)
			if err != nil {
				return Nil(), trap(fr.m, fr.f, fr.ip-1, "resolve %q: %v", name, err)
			}
			if cf.NParams != int(ins.B) {
				return Nil(), trap(fr.m, fr.f, fr.ip-1, "%q wants %d args, got %d", name, cf.NParams, ins.B)
			}
			if len(frames) >= env.MaxFrames {
				return Nil(), ErrStackOverflow
			}
			args := fr.popN(int(ins.B))
			frames = append(frames, newFrame(cm, cf, args))
		case OpHostCall:
			name := fr.m.Strs[ins.A]
			hf := env.Host[name]
			if hf == nil {
				return Nil(), trap(fr.m, fr.f, fr.ip-1, "no host function %q", name)
			}
			args := fr.popN(int(ins.B))
			v, err := hf(args)
			if err != nil {
				// Host errors abort execution and surface to the
				// server (which distinguishes migration requests,
				// security denials and plain failures).
				return Nil(), err
			}
			fr.push(v)
		case OpReturn:
			v := fr.pop()
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				return v, nil
			}
			frames[len(frames)-1].push(v)
		case OpPop:
			fr.pop()
		case OpDup:
			v := fr.pop()
			fr.push(v)
			fr.push(v)
		case OpMakeList:
			elems := fr.popN(int(ins.A))
			fr.push(L(elems...))
		case OpIndex:
			idx, agg := fr.pop(), fr.pop()
			v, err := index(fr, agg, idx)
			if err != nil {
				return Nil(), err
			}
			fr.push(v)
		case OpSetIndex:
			val, idx, agg := fr.pop(), fr.pop(), fr.pop()
			if err := setIndex(fr, agg, idx, val); err != nil {
				return Nil(), err
			}
			fr.push(Nil())
		case OpMakeMap:
			kvs := fr.popN(2 * int(ins.A))
			mm := make(map[string]Value, ins.A)
			for i := 0; i < len(kvs); i += 2 {
				if kvs[i].Kind != KindStr {
					return Nil(), trap(fr.m, fr.f, fr.ip-1, "map key is %s, want str", kvs[i].Kind)
				}
				mm[kvs[i].Str] = kvs[i+1]
			}
			fr.push(M(mm))
		case OpHalt:
			return fr.pop(), nil
		default:
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "unknown opcode %d", ins.Op)
		}
	}
}

func newFrame(m *Module, f *Func, args []Value) *frame {
	locals := make([]Value, f.NLocals)
	copy(locals, args)
	return &frame{m: m, f: f, locals: locals, stack: make([]Value, 0, 16)}
}

func (fr *frame) push(v Value) { fr.stack = append(fr.stack, v) }

func (fr *frame) pop() Value {
	v := fr.stack[len(fr.stack)-1]
	fr.stack = fr.stack[:len(fr.stack)-1]
	return v
}

// popN pops n values and returns them in push order.
func (fr *frame) popN(n int) []Value {
	out := make([]Value, n)
	copy(out, fr.stack[len(fr.stack)-n:])
	fr.stack = fr.stack[:len(fr.stack)-n]
	return out
}

func arith(fr *frame, op Opcode, a, b Value) (Value, error) {
	// String concatenation rides on Add.
	if op == OpAdd && a.Kind == KindStr && b.Kind == KindStr {
		return S(a.Str + b.Str), nil
	}
	if a.Kind != KindInt || b.Kind != KindInt {
		return Nil(), trap(fr.m, fr.f, fr.ip-1, "%s of %s and %s", op, a.Kind, b.Kind)
	}
	switch op {
	case OpAdd:
		return I(a.Int + b.Int), nil
	case OpSub:
		return I(a.Int - b.Int), nil
	case OpMul:
		return I(a.Int * b.Int), nil
	case OpDiv:
		if b.Int == 0 {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "division by zero")
		}
		return I(a.Int / b.Int), nil
	case OpMod:
		if b.Int == 0 {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "modulo by zero")
		}
		return I(a.Int % b.Int), nil
	}
	return Nil(), trap(fr.m, fr.f, fr.ip-1, "bad arith op")
}

func compare(fr *frame, op Opcode, a, b Value) (Value, error) {
	var c int
	switch {
	case a.Kind == KindInt && b.Kind == KindInt:
		switch {
		case a.Int < b.Int:
			c = -1
		case a.Int > b.Int:
			c = 1
		}
	case a.Kind == KindStr && b.Kind == KindStr:
		switch {
		case a.Str < b.Str:
			c = -1
		case a.Str > b.Str:
			c = 1
		}
	default:
		return Nil(), trap(fr.m, fr.f, fr.ip-1, "%s of %s and %s", op, a.Kind, b.Kind)
	}
	switch op {
	case OpLt:
		return B(c < 0), nil
	case OpLe:
		return B(c <= 0), nil
	case OpGt:
		return B(c > 0), nil
	case OpGe:
		return B(c >= 0), nil
	}
	return Nil(), trap(fr.m, fr.f, fr.ip-1, "bad compare op")
}

func index(fr *frame, agg, idx Value) (Value, error) {
	switch agg.Kind {
	case KindList:
		if idx.Kind != KindInt {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		return agg.List[idx.Int], nil
	case KindMap:
		if idx.Kind != KindStr {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "map key is %s", idx.Kind)
		}
		return agg.Map[idx.Str], nil
	case KindStr:
		if idx.Kind != KindInt {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "string index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.Str)) {
			return Nil(), trap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.Str))
		}
		return S(string(agg.Str[idx.Int])), nil
	default:
		return Nil(), trap(fr.m, fr.f, fr.ip-1, "cannot index %s", agg.Kind)
	}
}

func setIndex(fr *frame, agg, idx, val Value) error {
	switch agg.Kind {
	case KindList:
		if idx.Kind != KindInt {
			return trap(fr.m, fr.f, fr.ip-1, "list index is %s", idx.Kind)
		}
		if idx.Int < 0 || idx.Int >= int64(len(agg.List)) {
			return trap(fr.m, fr.f, fr.ip-1, "index %d out of range (len %d)", idx.Int, len(agg.List))
		}
		agg.List[idx.Int] = val
		return nil
	case KindMap:
		if idx.Kind != KindStr {
			return trap(fr.m, fr.f, fr.ip-1, "map key is %s", idx.Kind)
		}
		agg.Map[idx.Str] = val
		return nil
	default:
		return trap(fr.m, fr.f, fr.ip-1, "cannot set-index %s", agg.Kind)
	}
}

// InstallBuiltins adds the pure builtins every environment gets: len,
// append, str, contains, keys. They have no side effects and therefore
// need no security mediation.
func InstallBuiltins(env *Env) {
	env.Host["len"] = func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Nil(), fmt.Errorf("%w: len wants 1 arg", ErrTrap)
		}
		switch a := args[0]; a.Kind {
		case KindStr:
			return I(int64(len(a.Str))), nil
		case KindList:
			return I(int64(len(a.List))), nil
		case KindMap:
			return I(int64(len(a.Map))), nil
		default:
			return Nil(), fmt.Errorf("%w: len of %s", ErrTrap, a.Kind)
		}
	}
	env.Host["append"] = func(args []Value) (Value, error) {
		if len(args) < 1 || args[0].Kind != KindList {
			return Nil(), fmt.Errorf("%w: append wants (list, items...)", ErrTrap)
		}
		out := make([]Value, 0, len(args[0].List)+len(args)-1)
		out = append(out, args[0].List...)
		out = append(out, args[1:]...)
		return L(out...), nil
	}
	env.Host["str"] = func(args []Value) (Value, error) {
		if len(args) != 1 {
			return Nil(), fmt.Errorf("%w: str wants 1 arg", ErrTrap)
		}
		return S(args[0].Text()), nil
	}
	env.Host["contains"] = func(args []Value) (Value, error) {
		if len(args) != 2 {
			return Nil(), fmt.Errorf("%w: contains wants 2 args", ErrTrap)
		}
		switch a := args[0]; a.Kind {
		case KindList:
			for _, e := range a.List {
				if e.Equal(args[1]) {
					return B(true), nil
				}
			}
			return B(false), nil
		case KindMap:
			if args[1].Kind != KindStr {
				return Nil(), fmt.Errorf("%w: contains on map wants str key", ErrTrap)
			}
			_, ok := a.Map[args[1].Str]
			return B(ok), nil
		default:
			return Nil(), fmt.Errorf("%w: contains on %s", ErrTrap, a.Kind)
		}
	}
	env.Host["split"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindStr || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: split wants (str, sep)", ErrTrap)
		}
		if args[1].Str == "" {
			return Nil(), fmt.Errorf("%w: split with empty separator", ErrTrap)
		}
		parts := strings.Split(args[0].Str, args[1].Str)
		out := make([]Value, len(parts))
		for i, p := range parts {
			out[i] = S(p)
		}
		return L(out...), nil
	}
	env.Host["join"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindList || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: join wants (list, sep)", ErrTrap)
		}
		parts := make([]string, len(args[0].List))
		for i, e := range args[0].List {
			parts[i] = e.Text()
		}
		return S(strings.Join(parts, args[1].Str)), nil
	}
	env.Host["substr"] = func(args []Value) (Value, error) {
		if len(args) != 3 || args[0].Kind != KindStr ||
			args[1].Kind != KindInt || args[2].Kind != KindInt {
			return Nil(), fmt.Errorf("%w: substr wants (str, start, end)", ErrTrap)
		}
		s, lo, hi := args[0].Str, args[1].Int, args[2].Int
		if lo < 0 || hi < lo || hi > int64(len(s)) {
			return Nil(), fmt.Errorf("%w: substr bounds [%d:%d] on len %d", ErrTrap, lo, hi, len(s))
		}
		return S(s[lo:hi]), nil
	}
	env.Host["find"] = func(args []Value) (Value, error) {
		if len(args) != 2 || args[0].Kind != KindStr || args[1].Kind != KindStr {
			return Nil(), fmt.Errorf("%w: find wants (str, substr)", ErrTrap)
		}
		return I(int64(strings.Index(args[0].Str, args[1].Str))), nil
	}
	env.Host["keys"] = func(args []Value) (Value, error) {
		if len(args) != 1 || args[0].Kind != KindMap {
			return Nil(), fmt.Errorf("%w: keys wants a map", ErrTrap)
		}
		ks := make([]string, 0, len(args[0].Map))
		for k := range args[0].Map {
			ks = append(ks, k)
		}
		// Deterministic order keeps agent programs reproducible.
		for i := 1; i < len(ks); i++ {
			for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
				ks[j], ks[j-1] = ks[j-1], ks[j]
			}
		}
		out := make([]Value, len(ks))
		for i, k := range ks {
			out[i] = S(k)
		}
		return L(out...), nil
	}
}
