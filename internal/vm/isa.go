package vm

import "fmt"

// Opcode is a VM instruction opcode.
type Opcode uint8

// The instruction set. A and B are integer operands whose meaning
// depends on the opcode (pool index, local slot, jump target, argument
// count).
const (
	OpNop Opcode = iota
	// Constants.
	OpPushInt   // push Ints[A]
	OpPushStr   // push Strs[A]
	OpPushTrue  // push true
	OpPushFalse // push false
	OpPushNil   // push nil
	// Locals and globals. Globals are the agent's mutable state and
	// are addressed by name (Strs[A]) so they survive recompilation
	// and migration.
	OpLoadLocal   // push locals[A]
	OpStoreLocal  // locals[A] = pop
	OpLoadGlobal  // push globals[Strs[A]] (nil if unset)
	OpStoreGlobal // globals[Strs[A]] = pop
	// Arithmetic (ints).
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	// Comparison. Eq/Ne are structural; Lt..Ge require two ints or
	// two strings.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNot
	// Control flow. Jump targets are absolute instruction indices.
	OpJump        // ip = A
	OpJumpIfFalse // if !pop.Truthy() { ip = A }
	OpJumpIfTrue  // if pop.Truthy() { ip = A }
	// Calls. OpCall targets function index A in the current module
	// with B arguments. OpCallNamed resolves Strs[A] ("module:func"
	// or "func") through the namespace resolver — this is the hook
	// where class-loader-style shadowing applies. OpHostCall invokes
	// the host function named Strs[A].
	OpCall
	OpCallNamed
	OpHostCall
	OpReturn // return pop
	// Stack and aggregates.
	OpPop
	OpDup
	OpMakeList // pop A elements (in push order), push list
	OpIndex    // pop idx, pop agg, push agg[idx]
	OpSetIndex // pop val, pop idx, pop agg, store (agg mutated), push nil
	OpMakeMap  // pop 2A values (k1,v1,...), keys must be str, push map
	OpHalt     // stop with pop as the routine's value

	// Fused superinstructions (vm.Prepare's peephole pass, fuse.go).
	// Each stands for a short straight-line sequence of the canonical
	// opcodes above and is PC-preserving: the fused opcode replaces the
	// *first* instruction of the sequence and the remaining "shadow"
	// slots keep their original instructions, so jump targets, position
	// tables and manifest call sites are unchanged. Width() reports how
	// many slots a fused head covers; execution and fuel charging both
	// advance by that width. Fused opcodes are an execution-only form:
	// they appear solely in the prepared copies built by vm.Prepare and
	// must never be serialized into a transfer envelope (canonical wire
	// bytecode is enforced by agent.Encode/Decode and the fusedwire
	// analyzer).
	OpLLIAdd     // push locals[A] + Ints[B]    (loadl A; pushint B; add)
	OpLLISub     // push locals[A] - Ints[B]    (loadl A; pushint B; sub)
	OpLLILt      // push locals[A] < Ints[B]    (loadl A; pushint B; lt)
	OpLLILe      // push locals[A] <= Ints[B]   (loadl A; pushint B; le)
	OpLLLL       // push locals[A]; push locals[B] (loadl A; loadl B)
	OpEqJF       // pop b, pop a; if !(a == b) { ip = A } (eq; jz A)
	OpNeJF       // pop b, pop a; if !(a != b) { ip = A } (ne; jz A)
	OpLtJF       // pop b, pop a; if !(a < b)  { ip = A } (lt; jz A)
	OpLeJF       // pop b, pop a; if !(a <= b) { ip = A } (le; jz A)
	OpGtJF       // pop b, pop a; if !(a > b)  { ip = A } (gt; jz A)
	OpGeJF       // pop b, pop a; if !(a >= b) { ip = A } (ge; jz A)
	OpPushIntRet // return Ints[A]          (pushint A; ret) — terminal

	opMax // sentinel; keep last
)

// opWidth maps each opcode to the number of instruction slots it
// covers: 1 for canonical opcodes, the fused-sequence length for
// superinstructions. Indexed hot by the interpreter.
var opWidth = [opMax]uint8{
	OpLLIAdd: 3, OpLLISub: 3, OpLLILt: 3, OpLLILe: 3,
	OpLLLL: 2, OpEqJF: 2, OpNeJF: 2, OpLtJF: 2, OpLeJF: 2,
	OpGtJF: 2, OpGeJF: 2, OpPushIntRet: 2,
}

func init() {
	for op := range opWidth {
		if opWidth[op] == 0 {
			opWidth[op] = 1
		}
	}
}

// Width reports how many instruction slots the opcode covers: 1 for
// every canonical opcode, 2 or 3 for fused superinstructions (whose
// trailing shadow slots hold the original instructions and are skipped
// by execution). Unknown opcodes report 1.
func (o Opcode) Width() int {
	if o < opMax {
		return int(opWidth[o])
	}
	return 1
}

// Fused reports whether the opcode is an execution-only fused
// superinstruction (never valid in wire-format modules).
func (o Opcode) Fused() bool { return o.Width() > 1 }

var opNames = [...]string{
	OpNop: "nop", OpPushInt: "pushint", OpPushStr: "pushstr",
	OpPushTrue: "pushtrue", OpPushFalse: "pushfalse", OpPushNil: "pushnil",
	OpLoadLocal: "loadl", OpStoreLocal: "storel",
	OpLoadGlobal: "loadg", OpStoreGlobal: "storeg",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod", OpNeg: "neg",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge", OpNot: "not",
	OpJump: "jmp", OpJumpIfFalse: "jz", OpJumpIfTrue: "jnz",
	OpCall: "call", OpCallNamed: "calln", OpHostCall: "hostcall",
	OpReturn: "ret", OpPop: "pop", OpDup: "dup",
	OpMakeList: "mklist", OpIndex: "index", OpSetIndex: "setindex",
	OpMakeMap: "mkmap", OpHalt: "halt",
	OpLLIAdd: "lli_add", OpLLISub: "lli_sub", OpLLILt: "lli_lt", OpLLILe: "lli_le",
	OpLLLL: "ll_ll", OpEqJF: "eq_jz", OpNeJF: "ne_jz", OpLtJF: "lt_jz",
	OpLeJF: "le_jz", OpGtJF: "gt_jz", OpGeJF: "ge_jz", OpPushIntRet: "pushint_ret",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. Fixed-width operands keep decoding trivial
// and the verifier simple; compactness is not a goal of this substrate.
type Instr struct {
	Op   Opcode
	A, B int32
}

func (i Instr) String() string {
	switch i.Op {
	case OpNop, OpPushTrue, OpPushFalse, OpPushNil, OpAdd, OpSub, OpMul,
		OpDiv, OpMod, OpNeg, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpNot,
		OpReturn, OpPop, OpDup, OpIndex, OpSetIndex, OpHalt:
		return i.Op.String()
	case OpCall, OpCallNamed, OpHostCall,
		OpLLIAdd, OpLLISub, OpLLILt, OpLLILe, OpLLLL:
		return fmt.Sprintf("%s %d %d", i.Op, i.A, i.B)
	default:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	}
}

// Pos is the source position an instruction was compiled from. Line
// and Col are 1-based; zero values mean "unknown".
type Pos struct {
	Line, Col int32
}

// Func is one function of a module.
type Func struct {
	Name string
	// NParams is the declared parameter count; parameters occupy the
	// first NParams local slots.
	NParams int
	// NLocals is the total local slot count (params included).
	NLocals int
	Code    []Instr
	// Pos maps each instruction to its source position. Optional: only
	// meaningful when len(Pos) == len(Code); hand-built and deserialized
	// modules may omit it entirely.
	Pos []Pos
	// LocalNames names the local slots in order (parameters first).
	// Optional debug metadata like Pos; may be shorter than NLocals.
	LocalNames []string

	// rt is the per-function runtime table built by Prepare (fuse.go):
	// inline-cache slots and the verified operand-stack bound. nil on
	// canonical (wire-form) functions; unexported so gob never carries
	// it — serialization strips prepared state by construction.
	rt *funcRT
}

// PosAt returns the source position of instruction pc, or a zero Pos
// when the function carries no position table.
func (f *Func) PosAt(pc int) Pos {
	if len(f.Pos) == len(f.Code) && pc >= 0 && pc < len(f.Pos) {
		return f.Pos[pc]
	}
	return Pos{}
}

// LocalName names slot i, falling back to a numeric placeholder when
// the name table is absent.
func (f *Func) LocalName(i int) string {
	if i >= 0 && i < len(f.LocalNames) {
		return f.LocalNames[i]
	}
	return fmt.Sprintf("local%d", i)
}

// Module is a verifiable, serializable unit of agent code: the analogue
// of a Java class file. Agents carry a bundle of modules.
type Module struct {
	Name string
	Ints []int64
	Strs []string
	Fns  []Func
}

// Fn finds a function by name.
func (m *Module) Fn(name string) (int, *Func) {
	for i := range m.Fns {
		if m.Fns[i].Name == name {
			return i, &m.Fns[i]
		}
	}
	return -1, nil
}

// InternInt returns the pool index of v, adding it if needed. Used by
// the compiler and by tests that build modules directly.
func (m *Module) InternInt(v int64) int32 {
	for i, x := range m.Ints {
		if x == v {
			return int32(i)
		}
	}
	m.Ints = append(m.Ints, v)
	return int32(len(m.Ints) - 1)
}

// InternStr returns the pool index of s, adding it if needed.
func (m *Module) InternStr(s string) int32 {
	for i, x := range m.Strs {
		if x == s {
			return int32(i)
		}
	}
	m.Strs = append(m.Strs, s)
	return int32(len(m.Strs) - 1)
}

// Disassemble renders the module as text, for the aslc tool and debug
// output.
func (m *Module) Disassemble() string {
	out := fmt.Sprintf("module %s\n", m.Name)
	for fi := range m.Fns {
		f := &m.Fns[fi]
		out += fmt.Sprintf("func %s params=%d locals=%d\n", f.Name, f.NParams, f.NLocals)
		for pc, ins := range f.Code {
			note := ""
			switch ins.Op {
			case OpPushInt:
				if int(ins.A) < len(m.Ints) {
					note = fmt.Sprintf("  ; %d", m.Ints[ins.A])
				}
			case OpPushStr, OpLoadGlobal, OpStoreGlobal, OpCallNamed, OpHostCall:
				if int(ins.A) < len(m.Strs) {
					note = fmt.Sprintf("  ; %q", m.Strs[ins.A])
				}
			case OpCall:
				if int(ins.A) < len(m.Fns) {
					note = fmt.Sprintf("  ; %s", m.Fns[ins.A].Name)
				}
			case OpLLIAdd, OpLLISub, OpLLILt, OpLLILe:
				if int(ins.B) < len(m.Ints) {
					note = fmt.Sprintf("  ; %s, %d", f.LocalName(int(ins.A)), m.Ints[ins.B])
				}
			case OpPushIntRet:
				if int(ins.A) < len(m.Ints) {
					note = fmt.Sprintf("  ; %d", m.Ints[ins.A])
				}
			}
			out += fmt.Sprintf("  %4d  %s%s\n", pc, ins, note)
		}
	}
	return out
}
