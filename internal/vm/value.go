// Package vm implements the agent virtual machine: a verified stack
// machine that executes mobile agent code. It is this repository's
// substitute for the Java virtual machine the paper builds on — it
// provides the three properties the paper's security design needs from
// its execution substrate:
//
//  1. code mobility: modules (code) and globals (state) are plain data
//     that serialize and travel with an agent between servers;
//  2. verification: a received module is statically checked (opcode
//     validity, jump targets, stack discipline, pool bounds) before it
//     may run, like Java's byte-code verifier;
//  3. complete mediation: agent code can affect the world only through
//     host calls installed by the server, every one of which runs under
//     the server's security manager, like Java's security-sensitive
//     library classes.
//
// Execution is metered by instruction count, providing the
// denial-of-service protection the paper lists among its requirements
// ("inordinate consumption of a host's resources").
package vm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types of VM values.
type Kind uint8

// Value kinds. Handles reference host-side objects (e.g. resource
// proxies) through a per-domain table; they are meaningless outside the
// server that issued them and are invalidated on migration.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindStr
	KindList
	KindMap
	KindHandle
)

func (k Kind) String() string {
	switch k {
	case KindNil:
		return "nil"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindStr:
		return "str"
	case KindList:
		return "list"
	case KindMap:
		return "map"
	case KindHandle:
		return "handle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a VM value. The exported-field representation keeps values
// gob-encodable so agent state migrates without custom serializers.
type Value struct {
	Kind   Kind
	Bool   bool
	Int    int64
	Str    string
	List   []Value
	Map    map[string]Value
	Handle uint64
}

// Constructors.
func Nil() Value          { return Value{Kind: KindNil} }
func B(b bool) Value      { return Value{Kind: KindBool, Bool: b} }
func I(i int64) Value     { return Value{Kind: KindInt, Int: i} }
func S(s string) Value    { return Value{Kind: KindStr, Str: s} }
func L(vs ...Value) Value { return Value{Kind: KindList, List: vs} }
func M(m map[string]Value) Value {
	if m == nil {
		m = make(map[string]Value)
	}
	return Value{Kind: KindMap, Map: m}
}
func H(h uint64) Value { return Value{Kind: KindHandle, Handle: h} }

// Truthy implements the language's boolean coercion: nil and false are
// false; everything else (including 0 and "") is true, which keeps
// conditions explicit.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindNil:
		return false
	case KindBool:
		return v.Bool
	default:
		return true
	}
}

// Equal is deep structural equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNil:
		return true
	case KindBool:
		return v.Bool == o.Bool
	case KindInt:
		return v.Int == o.Int
	case KindStr:
		return v.Str == o.Str
	case KindHandle:
		return v.Handle == o.Handle
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	case KindMap:
		if len(v.Map) != len(o.Map) {
			return false
		}
		for k, a := range v.Map {
			b, ok := o.Map[k]
			if !ok || !a.Equal(b) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value in source-like syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindStr:
		return strconv.Quote(v.Str)
	case KindHandle:
		return fmt.Sprintf("handle#%d", v.Handle)
	case KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case KindMap:
		keys := make([]string, 0, len(v.Map))
		for k := range v.Map {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = strconv.Quote(k) + ": " + v.Map[k].String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return fmt.Sprintf("<%s>", v.Kind)
	}
}

// Text returns the unquoted string for str values and String() for the
// rest — the coercion used by the `str` builtin and log output.
func (v Value) Text() string {
	if v.Kind == KindStr {
		return v.Str
	}
	return v.String()
}

// Clone makes a deep copy, used when state must not be shared across
// protection domains.
func (v Value) Clone() Value {
	switch v.Kind {
	case KindList:
		cp := make([]Value, len(v.List))
		for i, e := range v.List {
			cp[i] = e.Clone()
		}
		return Value{Kind: KindList, List: cp}
	case KindMap:
		cp := make(map[string]Value, len(v.Map))
		for k, e := range v.Map {
			cp[k] = e.Clone()
		}
		return Value{Kind: KindMap, Map: cp}
	default:
		return v
	}
}
