package vm

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomValue builds an arbitrary Value of bounded depth — the shape of
// agent state that must survive migration.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Nil()
		case 1:
			return B(r.Intn(2) == 0)
		case 2:
			return I(r.Int63n(1 << 40))
		default:
			return S(randomString(r))
		}
	}
	switch r.Intn(6) {
	case 0:
		return Nil()
	case 1:
		return B(true)
	case 2:
		return I(-r.Int63n(1 << 30))
	case 3:
		return S(randomString(r))
	case 4:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return L(elems...)
	default:
		n := r.Intn(4)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			m[randomString(r)] = randomValue(r, depth-1)
		}
		return M(m)
	}
}

func randomString(r *rand.Rand) string {
	const alpha = "abcdefghijklmnop \t\"\\日本"
	n := r.Intn(8)
	out := make([]rune, n)
	runes := []rune(alpha)
	for i := range out {
		out[i] = runes[r.Intn(len(runes))]
	}
	return string(out)
}

// Property: agent-state values survive gob encoding bit-exactly.
func TestQuickValueGobRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 4)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return false
		}
		var got Value
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			return false
		}
		return got.Equal(v) && v.Equal(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is reflexive and Clone produces an Equal value whose
// mutation never affects the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 4)
		if !v.Equal(v) {
			return false
		}
		cl := v.Clone()
		if !cl.Equal(v) {
			return false
		}
		mutate(&cl, r)
		// v must still equal a fresh clone of itself regardless of
		// what happened to cl. Rebuild from the same seed to compare.
		v2 := randomValue(rand.New(rand.NewSource(seed)), 4)
		return v.Equal(v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// mutate scribbles over any mutable part of a value.
func mutate(v *Value, r *rand.Rand) {
	switch v.Kind {
	case KindList:
		if len(v.List) > 0 {
			v.List[r.Intn(len(v.List))] = S("mutated")
		}
	case KindMap:
		v.Map["mutated"] = I(999)
		for k := range v.Map {
			v.Map[k] = Nil()
			break
		}
	default:
		*v = S("mutated")
	}
}

// Property: String never panics and is non-empty for any value.
func TestQuickStringTotal(t *testing.T) {
	f := func(seed int64) bool {
		v := randomValue(rand.New(rand.NewSource(seed)), 5)
		return v.String() != "" && v.Text() != "" || v.Kind == KindStr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
