package vm

import (
	"errors"
	"fmt"
)

// MaxVerifiedStack bounds the statically computed operand-stack depth of
// any function; deeper functions are rejected at verification time so
// the interpreter can pre-allocate.
const MaxVerifiedStack = 1024

// ErrVerify wraps all verification failures.
var ErrVerify = errors.New("vm: verification failed")

func vErr(m *Module, f *Func, pc int, format string, args ...any) error {
	loc := fmt.Sprintf("%s.%s@%d: ", m.Name, f.Name, pc)
	return fmt.Errorf("%w: %s", ErrVerify, loc+fmt.Sprintf(format, args...))
}

// Verify statically checks a module: opcode validity, operand bounds,
// jump-target validity, call-site arity against same-module callees,
// stack discipline (no underflow, consistent depth at join points,
// bounded maximum), and that no execution path falls off the end of a
// function. This is the analogue of Java's byte-code verifier: it runs
// on every module received from the network before the module may
// execute (§3.2, component 1 of the Java security model).
func Verify(m *Module) error {
	if m.Name == "" {
		return fmt.Errorf("%w: module has no name", ErrVerify)
	}
	seen := make(map[string]bool, len(m.Fns))
	for fi := range m.Fns {
		f := &m.Fns[fi]
		if f.Name == "" {
			return fmt.Errorf("%w: %s: function %d has no name", ErrVerify, m.Name, fi)
		}
		if seen[f.Name] {
			return fmt.Errorf("%w: %s: duplicate function %q", ErrVerify, m.Name, f.Name)
		}
		seen[f.Name] = true
		if f.NParams < 0 || f.NLocals < f.NParams {
			return fmt.Errorf("%w: %s.%s: bad params/locals (%d/%d)", ErrVerify, m.Name, f.Name, f.NParams, f.NLocals)
		}
		if err := verifyFunc(m, f); err != nil {
			return err
		}
	}
	return nil
}

// stackEffect returns (pops, pushes) for an instruction, or an error for
// malformed operands that make the effect undefined.
func stackEffect(m *Module, f *Func, pc int, ins Instr) (pops, pushes int, err error) {
	switch ins.Op {
	case OpNop:
		return 0, 0, nil
	case OpPushInt:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Ints) {
			return 0, 0, vErr(m, f, pc, "int pool index %d out of range", ins.A)
		}
		return 0, 1, nil
	case OpPushStr:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
			return 0, 0, vErr(m, f, pc, "str pool index %d out of range", ins.A)
		}
		return 0, 1, nil
	case OpPushTrue, OpPushFalse, OpPushNil:
		return 0, 1, nil
	case OpLoadLocal:
		if int(ins.A) < 0 || int(ins.A) >= f.NLocals {
			return 0, 0, vErr(m, f, pc, "local %d out of range (%d locals)", ins.A, f.NLocals)
		}
		return 0, 1, nil
	case OpStoreLocal:
		if int(ins.A) < 0 || int(ins.A) >= f.NLocals {
			return 0, 0, vErr(m, f, pc, "local %d out of range (%d locals)", ins.A, f.NLocals)
		}
		return 1, 0, nil
	case OpLoadGlobal:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
			return 0, 0, vErr(m, f, pc, "global name index %d out of range", ins.A)
		}
		return 0, 1, nil
	case OpStoreGlobal:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
			return 0, 0, vErr(m, f, pc, "global name index %d out of range", ins.A)
		}
		return 1, 0, nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 2, 1, nil
	case OpNeg, OpNot:
		return 1, 1, nil
	case OpJump:
		return 0, 0, nil
	case OpJumpIfFalse, OpJumpIfTrue:
		return 1, 0, nil
	case OpCall:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Fns) {
			return 0, 0, vErr(m, f, pc, "call target %d out of range", ins.A)
		}
		callee := &m.Fns[ins.A]
		if int(ins.B) != callee.NParams {
			return 0, 0, vErr(m, f, pc, "call %s with %d args, want %d", callee.Name, ins.B, callee.NParams)
		}
		return int(ins.B), 1, nil
	case OpCallNamed, OpHostCall:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Strs) {
			return 0, 0, vErr(m, f, pc, "callee name index %d out of range", ins.A)
		}
		if ins.B < 0 {
			return 0, 0, vErr(m, f, pc, "negative arg count")
		}
		return int(ins.B), 1, nil
	case OpReturn, OpHalt:
		return 1, 0, nil
	case OpPop:
		return 1, 0, nil
	case OpDup:
		return 1, 2, nil
	case OpMakeList:
		if ins.A < 0 {
			return 0, 0, vErr(m, f, pc, "negative list size")
		}
		return int(ins.A), 1, nil
	case OpIndex:
		return 2, 1, nil
	case OpSetIndex:
		return 3, 1, nil
	case OpMakeMap:
		if ins.A < 0 {
			return 0, 0, vErr(m, f, pc, "negative map size")
		}
		return 2 * int(ins.A), 1, nil

	// Fused superinstructions (fuse.go). Effects are the *net* effect
	// of the canonical sequence each one stands for; the interpreter
	// keeps the virtual intermediates out of the operand stack, so the
	// net effect is also the honest per-slot depth change.
	case OpLLIAdd, OpLLISub, OpLLILt, OpLLILe:
		if int(ins.A) < 0 || int(ins.A) >= f.NLocals {
			return 0, 0, vErr(m, f, pc, "local %d out of range (%d locals)", ins.A, f.NLocals)
		}
		if int(ins.B) < 0 || int(ins.B) >= len(m.Ints) {
			return 0, 0, vErr(m, f, pc, "int pool index %d out of range", ins.B)
		}
		return 0, 1, nil
	case OpLLLL:
		if int(ins.A) < 0 || int(ins.A) >= f.NLocals {
			return 0, 0, vErr(m, f, pc, "local %d out of range (%d locals)", ins.A, f.NLocals)
		}
		if int(ins.B) < 0 || int(ins.B) >= f.NLocals {
			return 0, 0, vErr(m, f, pc, "local %d out of range (%d locals)", ins.B, f.NLocals)
		}
		return 0, 2, nil
	case OpEqJF, OpNeJF, OpLtJF, OpLeJF, OpGtJF, OpGeJF:
		return 2, 0, nil
	case OpPushIntRet:
		if int(ins.A) < 0 || int(ins.A) >= len(m.Ints) {
			return 0, 0, vErr(m, f, pc, "int pool index %d out of range", ins.A)
		}
		return 0, 0, nil
	default:
		return 0, 0, vErr(m, f, pc, "unknown opcode %d", ins.Op)
	}
}

// verifyFunc runs a worklist dataflow over instruction indices tracking
// the operand-stack depth, which must be unique per program point.
func verifyFunc(m *Module, f *Func) error {
	n := len(f.Code)
	if n == 0 {
		return vErr(m, f, 0, "empty body")
	}
	depth := make([]int, n) // -1 = unvisited
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	work := []int{0}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		d := depth[pc]
		ins := f.Code[pc]
		pops, pushes, err := stackEffect(m, f, pc, ins)
		if err != nil {
			return err
		}
		if d < pops {
			return vErr(m, f, pc, "stack underflow: depth %d, %s pops %d", d, ins.Op, pops)
		}
		nd := d - pops + pushes
		if nd > MaxVerifiedStack {
			return vErr(m, f, pc, "stack depth %d exceeds limit %d", nd, MaxVerifiedStack)
		}

		// successors — execution advances by the opcode's width, so the
		// shadow slots of a fused head are skipped (they are data, not
		// reachable code).
		var succs []int
		switch ins.Op {
		case OpReturn, OpHalt, OpPushIntRet:
			// terminal
		case OpJump:
			succs = []int{int(ins.A)}
		case OpJumpIfFalse, OpJumpIfTrue:
			succs = []int{int(ins.A), pc + 1}
		case OpEqJF, OpNeJF, OpLtJF, OpLeJF, OpGtJF, OpGeJF:
			succs = []int{int(ins.A), pc + ins.Op.Width()}
		default:
			succs = []int{pc + ins.Op.Width()}
		}
		for _, s := range succs {
			if s < 0 || s >= n {
				switch ins.Op {
				case OpJump, OpJumpIfFalse, OpJumpIfTrue,
					OpEqJF, OpNeJF, OpLtJF, OpLeJF, OpGtJF, OpGeJF:
					if s != pc+ins.Op.Width() {
						return vErr(m, f, pc, "jump target %d out of range [0,%d)", s, n)
					}
				}
				return vErr(m, f, pc, "execution falls off end of function")
			}
			switch depth[s] {
			case -1:
				depth[s] = nd
				work = append(work, s)
			case nd:
				// consistent join; nothing to do
			default:
				return vErr(m, f, pc, "inconsistent stack depth at %d: %d vs %d", s, depth[s], nd)
			}
		}
	}
	return nil
}

// VerifyBundle verifies every module of an agent's code bundle and
// checks for duplicate module names within the bundle.
func VerifyBundle(mods []Module) error {
	seen := make(map[string]bool, len(mods))
	for i := range mods {
		if seen[mods[i].Name] {
			return fmt.Errorf("%w: duplicate module %q in bundle", ErrVerify, mods[i].Name)
		}
		seen[mods[i].Name] = true
		if err := Verify(&mods[i]); err != nil {
			return err
		}
	}
	return nil
}
