package vm

import (
	"errors"
	"testing"
)

func expectVerifyErr(t *testing.T, m *Module, why string) {
	t.Helper()
	if err := Verify(m); !errors.Is(err, ErrVerify) {
		t.Fatalf("%s: got %v, want verification failure", why, err)
	}
}

func TestVerifyAcceptsGood(t *testing.T) {
	b := newMB("ok").fn("main", 1, 2)
	b.i(OpLoadLocal, 0).pushI(1).i(OpAdd).i(OpStoreLocal, 1)
	b.i(OpLoadLocal, 1).ret()
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsEmptyModuleName(t *testing.T) {
	m := newMB("").fn("main", 0, 0).i(OpPushNil).ret().m
	expectVerifyErr(t, m, "empty module name")
}

func TestVerifyRejectsUnnamedFunc(t *testing.T) {
	m := newMB("t").fn("", 0, 0).i(OpPushNil).ret().m
	expectVerifyErr(t, m, "unnamed func")
}

func TestVerifyRejectsDuplicateFuncs(t *testing.T) {
	b := newMB("t").fn("f", 0, 0).i(OpPushNil).ret()
	b.fn("f", 0, 0).i(OpPushNil).ret()
	expectVerifyErr(t, b.m, "duplicate funcs")
}

func TestVerifyRejectsEmptyBody(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).m
	expectVerifyErr(t, m, "empty body")
}

func TestVerifyRejectsUnknownOpcode(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(Opcode(200)).ret().m
	expectVerifyErr(t, m, "unknown opcode")
}

func TestVerifyRejectsStackUnderflow(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpAdd).ret().m
	expectVerifyErr(t, m, "underflow")
}

func TestVerifyRejectsFallOffEnd(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpPushNil).m
	expectVerifyErr(t, m, "fall off end")
}

func TestVerifyRejectsBadJumpTarget(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpJump, 99).m
	expectVerifyErr(t, m, "jump out of range")
	m2 := newMB("t").fn("main", 0, 0).i(OpJump, -1).m
	expectVerifyErr(t, m2, "negative jump")
}

func TestVerifyRejectsInconsistentJoinDepth(t *testing.T) {
	// Two paths reach instruction 4 with different stack depths:
	//   0 pushtrue  1 jz 3  2 pushnil  3 pushnil  4 ret
	// depth at 3 via fallthrough = 1, via jump = 0 → at 4: 2 vs 1.
	b := newMB("t").fn("main", 0, 0)
	b.i(OpPushTrue)
	b.i(OpJumpIfFalse, 3)
	b.i(OpPushNil)
	b.i(OpPushNil)
	b.ret()
	expectVerifyErr(t, b.m, "inconsistent join")
}

func TestVerifyRejectsBadPoolIndices(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpPushInt, 5).ret().m
	expectVerifyErr(t, m, "int pool")
	m2 := newMB("t").fn("main", 0, 0).i(OpPushStr, 5).ret().m
	expectVerifyErr(t, m2, "str pool")
	m3 := newMB("t").fn("main", 0, 0).i(OpLoadGlobal, 9).ret().m
	expectVerifyErr(t, m3, "global name pool")
}

func TestVerifyRejectsBadLocals(t *testing.T) {
	m := newMB("t").fn("main", 0, 1).i(OpLoadLocal, 3).ret().m
	expectVerifyErr(t, m, "local out of range")
	m2 := newMB("t").fn("main", 2, 1).i(OpPushNil).ret().m
	expectVerifyErr(t, m2, "locals < params")
}

func TestVerifyRejectsBadCalls(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpCall, 7, 0).ret().m
	expectVerifyErr(t, m, "call target out of range")

	b := newMB("t")
	b.fn("two", 2, 2).i(OpPushNil).ret()
	b.fn("main", 0, 0).i(OpPushNil).i(OpCall, 0, 1).ret()
	expectVerifyErr(t, b.m, "call arity mismatch")

	b2 := newMB("t").fn("main", 0, 0)
	b2.i(OpCallNamed, 9, 0).ret()
	expectVerifyErr(t, b2.m, "named callee index")

	b3 := newMB("t").fn("main", 0, 0)
	b3.i(OpHostCall, b3.m.InternStr("h"), -1).ret()
	expectVerifyErr(t, b3.m, "negative hostcall args")
}

func TestVerifyRejectsBadAggregates(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpMakeList, -2).ret().m
	expectVerifyErr(t, m, "negative list")
	m2 := newMB("t").fn("main", 0, 0).i(OpMakeMap, -1).ret().m
	expectVerifyErr(t, m2, "negative map")
	// MakeList consuming more than available.
	m3 := newMB("t").fn("main", 0, 0).i(OpPushNil).i(OpMakeList, 3).ret().m
	expectVerifyErr(t, m3, "list underflow")
}

func TestVerifyRejectsOverdeepStack(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	for i := 0; i <= MaxVerifiedStack; i++ {
		b.i(OpPushNil)
	}
	b.ret()
	expectVerifyErr(t, b.m, "overdeep stack")
}

func TestVerifyAcceptsLoopWithConsistentDepth(t *testing.T) {
	b := newMB("t").fn("main", 0, 1)
	b.pushI(0).i(OpStoreLocal, 0)
	loop := int32(len(b.f.Code))
	b.i(OpLoadLocal, 0).pushI(10).i(OpLt)
	jz := len(b.f.Code)
	b.i(OpJumpIfFalse, 0)
	b.i(OpLoadLocal, 0).pushI(1).i(OpAdd).i(OpStoreLocal, 0)
	b.i(OpJump, loop)
	b.f.Code[jz].A = int32(len(b.f.Code))
	b.i(OpLoadLocal, 0).ret()
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyBundleDuplicates(t *testing.T) {
	m1 := *newMB("dup").fn("main", 0, 0).i(OpPushNil).ret().m
	m2 := *newMB("dup").fn("other", 0, 0).i(OpPushNil).ret().m
	if err := VerifyBundle([]Module{m1, m2}); !errors.Is(err, ErrVerify) {
		t.Fatalf("got %v", err)
	}
	m2.Name = "other"
	if err := VerifyBundle([]Module{m1, m2}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random mutation of a verified module either still verifies
// or is rejected — Verify must never panic, and a verified module must
// never make Run panic (errors are fine). This is the fuzz-ish guarantee
// the server relies on when executing hostile bundles.
func TestVerifyAndRunNeverPanic(t *testing.T) {
	base := func() *mb {
		b := newMB("t").fn("main", 0, 2)
		b.pushI(3).i(OpStoreLocal, 0)
		b.i(OpLoadLocal, 0).pushI(4).i(OpAdd).i(OpStoreLocal, 1)
		b.i(OpLoadLocal, 1).ret()
		return b
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic: %v", r)
		}
	}()
	for seed := 0; seed < 3000; seed++ {
		b := base()
		code := b.f.Code
		idx := seed % len(code)
		field := (seed / len(code)) % 3
		delta := int32(seed%7) - 3
		switch field {
		case 0:
			code[idx].Op = Opcode(uint8(code[idx].Op) + uint8(delta))
		case 1:
			code[idx].A += delta
		case 2:
			code[idx].B += delta
		}
		if err := Verify(b.m); err != nil {
			continue // rejected, fine
		}
		env := NewEnv()
		env.Meter = NewMeter(100_000)
		_, _ = Run(env, b.m, "main") // must not panic
	}
}
