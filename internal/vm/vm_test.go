package vm

import (
	"errors"
	"strings"
	"testing"
)

// mb is a tiny module builder for tests.
type mb struct {
	m *Module
	f *Func
}

func newMB(name string) *mb {
	return &mb{m: &Module{Name: name}}
}

func (b *mb) fn(name string, params, locals int) *mb {
	b.m.Fns = append(b.m.Fns, Func{Name: name, NParams: params, NLocals: locals})
	b.f = &b.m.Fns[len(b.m.Fns)-1]
	return b
}

func (b *mb) i(op Opcode, operands ...int32) *mb {
	ins := Instr{Op: op}
	if len(operands) > 0 {
		ins.A = operands[0]
	}
	if len(operands) > 1 {
		ins.B = operands[1]
	}
	b.f.Code = append(b.f.Code, ins)
	return b
}

func (b *mb) pushI(v int64) *mb  { return b.i(OpPushInt, b.m.InternInt(v)) }
func (b *mb) pushS(s string) *mb { return b.i(OpPushStr, b.m.InternStr(s)) }
func (b *mb) ret() *mb           { return b.i(OpReturn) }

func mustRun(t *testing.T, m *Module, fn string, args ...Value) Value {
	t.Helper()
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	env := NewEnv()
	InstallBuiltins(env)
	env.Resolver = ModuleResolver{M: m}
	v, err := Run(env, m, fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	// main() { return (2+3)*4 - 10/2 % 3 }  -> 20 - (5%3)=20-2=18
	b := newMB("t").fn("main", 0, 0).
		pushI(2).pushI(3).i(OpAdd).pushI(4).i(OpMul).
		pushI(10).pushI(2).i(OpDiv).pushI(3).i(OpMod).
		i(OpSub).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(I(18)) {
		t.Fatalf("got %v", v)
	}
}

func TestStringConcatAndCompare(t *testing.T) {
	b := newMB("t").fn("main", 0, 0).
		pushS("mobile ").pushS("agent").i(OpAdd).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(S("mobile agent")) {
		t.Fatalf("got %v", v)
	}
	b2 := newMB("t").fn("main", 0, 0).
		pushS("abc").pushS("abd").i(OpLt).ret()
	if v := mustRun(t, b2.m, "main"); !v.Equal(B(true)) {
		t.Fatalf("got %v", v)
	}
}

func TestLocalsAndLoop(t *testing.T) {
	// sum 1..n iteratively
	b := newMB("t").fn("main", 1, 3)
	// locals: 0=n, 1=i, 2=acc
	b.pushI(1).i(OpStoreLocal, 1)
	b.pushI(0).i(OpStoreLocal, 2)
	loop := int32(len(b.f.Code))
	b.i(OpLoadLocal, 1).i(OpLoadLocal, 0).i(OpLe)
	jzAt := len(b.f.Code)
	b.i(OpJumpIfFalse, 0) // patch later
	b.i(OpLoadLocal, 2).i(OpLoadLocal, 1).i(OpAdd).i(OpStoreLocal, 2)
	b.i(OpLoadLocal, 1).pushI(1).i(OpAdd).i(OpStoreLocal, 1)
	b.i(OpJump, loop)
	end := int32(len(b.f.Code))
	b.f.Code[jzAt].A = end
	b.i(OpLoadLocal, 2).ret()
	if v := mustRun(t, b.m, "main", I(100)); !v.Equal(I(5050)) {
		t.Fatalf("got %v", v)
	}
}

func TestGlobalsPersistAcrossCalls(t *testing.T) {
	b := newMB("t").fn("bump", 0, 0).
		i(OpLoadGlobal, 0).pushI(1).i(OpAdd).i(OpStoreGlobal, 0).
		i(OpLoadGlobal, 0).ret()
	b.m.Strs = append([]string{"counter"}, b.m.Strs...)
	// fix pool indices: InternStr used by pushI only touched Ints; but
	// pushS was not used here, so index 0 is "counter" as intended.
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Globals["counter"] = I(10)
	if v, err := Run(env, b.m, "bump"); err != nil || !v.Equal(I(11)) {
		t.Fatalf("%v %v", v, err)
	}
	if v, err := Run(env, b.m, "bump"); err != nil || !v.Equal(I(12)) {
		t.Fatalf("%v %v", v, err)
	}
	if !env.Globals["counter"].Equal(I(12)) {
		t.Fatal("global not persisted")
	}
}

func TestCallAndRecursion(t *testing.T) {
	// fact(n) = n<=1 ? 1 : n*fact(n-1)
	b := newMB("t")
	b.fn("fact", 1, 1)
	b.i(OpLoadLocal, 0).pushI(1).i(OpLe)
	jz := len(b.f.Code)
	b.i(OpJumpIfFalse, 0)
	b.pushI(1).ret()
	b.f.Code[jz].A = int32(len(b.f.Code))
	b.i(OpLoadLocal, 0).i(OpLoadLocal, 0).pushI(1).i(OpSub).i(OpCall, 0, 1).i(OpMul).ret()
	b.fn("main", 0, 0).pushI(10).i(OpCall, 0, 1).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(I(3628800)) {
		t.Fatalf("got %v", v)
	}
}

func TestCallNamedViaResolver(t *testing.T) {
	lib := newMB("lib").fn("double", 1, 1).
		i(OpLoadLocal, 0).pushI(2).i(OpMul).ret().m
	main := newMB("app").fn("main", 0, 0)
	main.pushI(21)
	main.i(OpCallNamed, main.m.InternStr("lib:double"), 1)
	main.ret()
	if err := Verify(lib); err != nil {
		t.Fatal(err)
	}
	if err := Verify(main.m); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Resolver = resolverFunc(func(name string) (*Module, *Func, error) {
		if name == "lib:double" {
			_, f := lib.Fn("double")
			return lib, f, nil
		}
		return nil, nil, ErrNoFunction
	})
	v, err := Run(env, main.m, "main")
	if err != nil || !v.Equal(I(42)) {
		t.Fatalf("%v %v", v, err)
	}
}

type resolverFunc func(string) (*Module, *Func, error)

func (f resolverFunc) ResolveFunc(n string) (*Module, *Func, error) { return f(n) }

func TestHostCall(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.pushI(5).pushI(7)
	b.i(OpHostCall, b.m.InternStr("hostadd"), 2)
	b.ret()
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.Host["hostadd"] = func(args []Value) (Value, error) {
		return I(args[0].Int + args[1].Int), nil
	}
	v, err := Run(env, b.m, "main")
	if err != nil || !v.Equal(I(12)) {
		t.Fatalf("%v %v", v, err)
	}
}

func TestHostCallMissing(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.i(OpHostCall, b.m.InternStr("no_such"), 0).ret()
	env := NewEnv()
	if _, err := Run(env, b.m, "main"); !errors.Is(err, ErrTrap) {
		t.Fatalf("got %v", err)
	}
}

func TestHostErrorPropagates(t *testing.T) {
	sentinel := errors.New("sentinel")
	b := newMB("t").fn("main", 0, 0)
	b.i(OpHostCall, b.m.InternStr("boom"), 0).ret()
	env := NewEnv()
	env.Host["boom"] = func([]Value) (Value, error) { return Nil(), sentinel }
	if _, err := Run(env, b.m, "main"); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestListsAndMaps(t *testing.T) {
	b := newMB("t").fn("main", 0, 1)
	// l = [10, 20, 30]; l[1] = 99; return l[1] + l[2]
	b.pushI(10).pushI(20).pushI(30).i(OpMakeList, 3).i(OpStoreLocal, 0)
	b.i(OpLoadLocal, 0).pushI(1).pushI(99).i(OpSetIndex).i(OpPop)
	b.i(OpLoadLocal, 0).pushI(1).i(OpIndex)
	b.i(OpLoadLocal, 0).pushI(2).i(OpIndex)
	b.i(OpAdd).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(I(129)) {
		t.Fatalf("got %v", v)
	}

	b2 := newMB("t").fn("main", 0, 1)
	b2.pushS("price").pushI(42).i(OpMakeMap, 1).i(OpStoreLocal, 0)
	b2.i(OpLoadLocal, 0).pushS("price").i(OpIndex).ret()
	if v := mustRun(t, b2.m, "main"); !v.Equal(I(42)) {
		t.Fatalf("got %v", v)
	}
}

func TestStringIndex(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.pushS("agent").pushI(2).i(OpIndex).ret()
	if v := mustRun(t, b.m, "main"); !v.Equal(S("e")) {
		t.Fatalf("got %v", v)
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Module
	}{
		{"div by zero", func() *Module {
			return newMB("t").fn("main", 0, 0).pushI(1).pushI(0).i(OpDiv).ret().m
		}},
		{"mod by zero", func() *Module {
			return newMB("t").fn("main", 0, 0).pushI(1).pushI(0).i(OpMod).ret().m
		}},
		{"add int str", func() *Module {
			return newMB("t").fn("main", 0, 0).pushI(1).pushS("x").i(OpAdd).ret().m
		}},
		{"index out of range", func() *Module {
			return newMB("t").fn("main", 0, 0).pushI(1).i(OpMakeList, 1).pushI(5).i(OpIndex).ret().m
		}},
		{"index nil", func() *Module {
			return newMB("t").fn("main", 0, 0).i(OpPushNil).pushI(0).i(OpIndex).ret().m
		}},
		{"compare mixed", func() *Module {
			return newMB("t").fn("main", 0, 0).pushI(1).pushS("a").i(OpLt).ret().m
		}},
		{"neg of str", func() *Module {
			return newMB("t").fn("main", 0, 0).pushS("a").i(OpNeg).ret().m
		}},
	}
	for _, c := range cases {
		m := c.build()
		if err := Verify(m); err != nil {
			t.Fatalf("%s: verify: %v", c.name, err)
		}
		if _, err := Run(NewEnv(), m, "main"); !errors.Is(err, ErrTrap) {
			t.Errorf("%s: got %v, want trap", c.name, err)
		}
	}
}

func TestFuelExhaustion(t *testing.T) {
	// Infinite loop must be stopped by the meter (DoS protection).
	b := newMB("t").fn("main", 0, 0)
	b.i(OpJump, 0)
	if err := Verify(b.m); err == nil {
		// jump-to-self never returns — verifier allows it (no fall-off)
	} else {
		t.Fatalf("verify: %v", err)
	}
	env := NewEnv()
	env.Meter = NewMeter(10_000)
	_, err := Run(env, b.m, "main")
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("got %v, want fuel exhaustion", err)
	}
	if env.Meter.Used() < 10_000 {
		t.Fatalf("used = %d", env.Meter.Used())
	}
}

func TestStackOverflowGuard(t *testing.T) {
	// f() { return f() } — unbounded recursion hits MaxFrames.
	b := newMB("t").fn("f", 0, 0).i(OpCall, 0, 0).ret()
	if err := Verify(b.m); err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	env.MaxFrames = 32
	if _, err := Run(env, b.m, "f"); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("got %v", err)
	}
}

func TestRunUnknownFunction(t *testing.T) {
	m := newMB("t").fn("main", 0, 0).i(OpPushNil).ret().m
	if _, err := Run(NewEnv(), m, "nope"); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("got %v", err)
	}
}

func TestRunArgCountMismatch(t *testing.T) {
	m := newMB("t").fn("main", 2, 2).i(OpPushNil).ret().m
	if _, err := Run(NewEnv(), m, "main", I(1)); err == nil {
		t.Fatal("arg mismatch accepted")
	}
}

func TestBuiltins(t *testing.T) {
	env := NewEnv()
	InstallBuiltins(env)
	call := func(name string, args ...Value) (Value, error) {
		return env.Host[name](args)
	}
	if v, _ := call("len", S("abc")); !v.Equal(I(3)) {
		t.Fatal("len str")
	}
	if v, _ := call("len", L(I(1), I(2))); !v.Equal(I(2)) {
		t.Fatal("len list")
	}
	if v, _ := call("append", L(I(1)), I(2), I(3)); !v.Equal(L(I(1), I(2), I(3))) {
		t.Fatal("append")
	}
	if v, _ := call("str", I(42)); !v.Equal(S("42")) {
		t.Fatal("str")
	}
	if v, _ := call("contains", L(S("a"), S("b")), S("b")); !v.Equal(B(true)) {
		t.Fatal("contains")
	}
	if v, _ := call("keys", M(map[string]Value{"b": I(1), "a": I(2)})); !v.Equal(L(S("a"), S("b"))) {
		t.Fatalf("keys: %v", v)
	}
	for _, bad := range []string{"len", "append", "str", "contains", "keys",
		"split", "join", "substr", "find"} {
		if _, err := call(bad); err == nil {
			t.Errorf("%s with no args accepted", bad)
		}
	}
}

func TestStringBuiltins(t *testing.T) {
	env := NewEnv()
	InstallBuiltins(env)
	call := func(name string, args ...Value) (Value, error) {
		return env.Host[name](args)
	}
	if v, err := call("split", S("a/b/c"), S("/")); err != nil || !v.Equal(L(S("a"), S("b"), S("c"))) {
		t.Fatalf("split: %v %v", v, err)
	}
	if v, _ := call("split", S("abc"), S(",")); !v.Equal(L(S("abc"))) {
		t.Fatal("split without separator hit")
	}
	if _, err := call("split", S("abc"), S("")); err == nil {
		t.Fatal("split with empty separator accepted")
	}
	if v, err := call("join", L(S("x"), I(2), S("y")), S("-")); err != nil || !v.Equal(S("x-2-y")) {
		t.Fatalf("join: %v %v", v, err)
	}
	if v, err := call("substr", S("mobile"), I(1), I(4)); err != nil || !v.Equal(S("obi")) {
		t.Fatalf("substr: %v %v", v, err)
	}
	for _, bad := range [][2]int64{{-1, 2}, {3, 2}, {0, 99}} {
		if _, err := call("substr", S("mobile"), I(bad[0]), I(bad[1])); err == nil {
			t.Errorf("substr bounds %v accepted", bad)
		}
	}
	if v, err := call("find", S("resource"), S("our")); err != nil || !v.Equal(I(3)) {
		t.Fatalf("find: %v %v", v, err)
	}
	if v, _ := call("find", S("resource"), S("zzz")); !v.Equal(I(-1)) {
		t.Fatal("find missing should be -1")
	}
}

func TestValueStringAndClone(t *testing.T) {
	v := M(map[string]Value{"k": L(I(1), S("x"), B(true), Nil())})
	if got := v.String(); got != `{"k": [1, "x", true, nil]}` {
		t.Fatalf("String = %s", got)
	}
	cl := v.Clone()
	cl.Map["k"].List[0] = I(99)
	if v.Map["k"].List[0].Equal(I(99)) {
		t.Fatal("clone shares list storage")
	}
}

func TestDisassembleMentionsNames(t *testing.T) {
	b := newMB("t").fn("main", 0, 0)
	b.pushI(7).i(OpHostCall, b.m.InternStr("log"), 1).ret()
	d := b.m.Disassemble()
	if !strings.Contains(d, "hostcall") || !strings.Contains(d, `"log"`) {
		t.Fatalf("disassembly: %s", d)
	}
}
